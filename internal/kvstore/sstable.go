package kvstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"io"
	"os"
	"sort"
)

// sstable is one immutable sorted table on disk.
//
// File layout (little-endian):
//
//	header:  u32 magic | u32 entry count
//	entries: repeated u32 keyLen | u32 valLen(0xffffffff = tombstone) |
//	         key | value | u32 crc(key+value)
//	bloom:   u32 bit count | bits
//	index:   u32 index count | repeated (u32 keyLen | key | u64 offset)
//	footer:  u64 bloom offset | u64 index offset | u32 magic
//
// The sparse index holds every indexInterval-th key; lookups seek to the
// greatest indexed key ≤ target and scan forward.
const (
	ssMagic       = 0x4c534d31 // "LSM1"
	tombstoneMark = 0xffffffff
	indexInterval = 16
	bloomBitsPer  = 10
)

type ssIndexEntry struct {
	key    string
	offset uint64
}

type sstable struct {
	path    string
	f       *os.File
	count   int
	bloom   []uint64
	nbits   uint32
	index   []ssIndexEntry
	dataEnd uint64
	minKey  string
	maxKey  string
	bytes   int64 // live value payload bytes (excluding tombstones)
}

type ssEntry struct {
	key       string
	value     []byte
	tombstone bool
}

// writeSSTable writes sorted entries to path and opens the result.
func writeSSTable(path string, entries []ssEntry) (*sstable, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<20)

	nbits := uint32(len(entries)*bloomBitsPer + 64)
	bloom := make([]uint64, (nbits+63)/64)
	var index []ssIndexEntry
	var off uint64
	var liveBytes int64

	writeU32 := func(v uint32) {
		var b [4]byte
		binary.LittleEndian.PutUint32(b[:], v)
		w.Write(b[:])
		off += 4
	}

	writeU32(ssMagic)
	writeU32(uint32(len(entries)))
	for i, e := range entries {
		if i%indexInterval == 0 {
			index = append(index, ssIndexEntry{key: e.key, offset: off})
		}
		bloomSet(bloom, nbits, e.key)
		writeU32(uint32(len(e.key)))
		if e.tombstone {
			writeU32(tombstoneMark)
		} else {
			writeU32(uint32(len(e.value)))
			liveBytes += int64(len(e.value))
		}
		w.WriteString(e.key)
		off += uint64(len(e.key))
		if !e.tombstone {
			w.Write(e.value)
			off += uint64(len(e.value))
		}
		crc := crc32.ChecksumIEEE([]byte(e.key))
		if !e.tombstone {
			crc = crc32.Update(crc, crc32.IEEETable, e.value)
		}
		writeU32(crc)
	}
	dataEnd := off

	bloomOff := off
	writeU32(nbits)
	for _, word := range bloom {
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], word)
		w.Write(b[:])
		off += 8
	}
	indexOff := off
	writeU32(uint32(len(index)))
	for _, ie := range index {
		writeU32(uint32(len(ie.key)))
		w.WriteString(ie.key)
		off += uint64(len(ie.key))
		var b [8]byte
		binary.LittleEndian.PutUint64(b[:], ie.offset)
		w.Write(b[:])
		off += 8
	}
	var footer [20]byte
	binary.LittleEndian.PutUint64(footer[0:], bloomOff)
	binary.LittleEndian.PutUint64(footer[8:], indexOff)
	binary.LittleEndian.PutUint32(footer[16:], ssMagic)
	w.Write(footer[:])
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	t := &sstable{
		path: path, f: f, count: len(entries),
		bloom: bloom, nbits: nbits, index: index, dataEnd: dataEnd,
		bytes: liveBytes,
	}
	if len(entries) > 0 {
		t.minKey = entries[0].key
		t.maxKey = entries[len(entries)-1].key
	}
	return t, nil
}

// openSSTable memoizes the bloom filter and sparse index from an existing
// table file.
func openSSTable(path string) (*sstable, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	if st.Size() < 28 {
		f.Close()
		return nil, fmt.Errorf("kvstore: sstable %s too small", path)
	}
	var footer [20]byte
	if _, err := f.ReadAt(footer[:], st.Size()-20); err != nil {
		f.Close()
		return nil, err
	}
	if binary.LittleEndian.Uint32(footer[16:]) != ssMagic {
		f.Close()
		return nil, fmt.Errorf("kvstore: sstable %s bad footer magic", path)
	}
	bloomOff := binary.LittleEndian.Uint64(footer[0:])
	indexOff := binary.LittleEndian.Uint64(footer[8:])

	meta := make([]byte, st.Size()-20-int64(bloomOff))
	if _, err := f.ReadAt(meta, int64(bloomOff)); err != nil {
		f.Close()
		return nil, err
	}
	nbits := binary.LittleEndian.Uint32(meta)
	words := int((nbits + 63) / 64)
	if len(meta) < 4+8*words {
		f.Close()
		return nil, fmt.Errorf("kvstore: sstable %s truncated bloom", path)
	}
	bloom := make([]uint64, words)
	for i := range bloom {
		bloom[i] = binary.LittleEndian.Uint64(meta[4+8*i:])
	}
	idxMeta := meta[indexOff-bloomOff:]
	if len(idxMeta) < 4 {
		f.Close()
		return nil, fmt.Errorf("kvstore: sstable %s truncated index", path)
	}
	nIdx := int(binary.LittleEndian.Uint32(idxMeta))
	idxMeta = idxMeta[4:]
	index := make([]ssIndexEntry, 0, nIdx)
	for i := 0; i < nIdx; i++ {
		if len(idxMeta) < 4 {
			f.Close()
			return nil, fmt.Errorf("kvstore: sstable %s truncated index entry", path)
		}
		kl := int(binary.LittleEndian.Uint32(idxMeta))
		if len(idxMeta) < 4+kl+8 {
			f.Close()
			return nil, fmt.Errorf("kvstore: sstable %s truncated index key", path)
		}
		key := string(idxMeta[4 : 4+kl])
		offv := binary.LittleEndian.Uint64(idxMeta[4+kl:])
		index = append(index, ssIndexEntry{key: key, offset: offv})
		idxMeta = idxMeta[4+kl+8:]
	}

	var hdr [8]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		f.Close()
		return nil, err
	}
	if binary.LittleEndian.Uint32(hdr[:]) != ssMagic {
		f.Close()
		return nil, fmt.Errorf("kvstore: sstable %s bad header magic", path)
	}
	t := &sstable{
		path: path, f: f,
		count: int(binary.LittleEndian.Uint32(hdr[4:])),
		bloom: bloom, nbits: nbits, index: index, dataEnd: bloomOff,
	}
	// Recover min/max/live-bytes with one sequential pass.
	err = t.iterate(func(e ssEntry) bool {
		if t.minKey == "" {
			t.minKey = e.key
		}
		t.maxKey = e.key
		if !e.tombstone {
			t.bytes += int64(len(e.value))
		}
		return true
	})
	if err != nil {
		f.Close()
		return nil, err
	}
	return t, nil
}

func (t *sstable) close() error { return t.f.Close() }

// get returns (value, found, tombstone).
func (t *sstable) get(key string) ([]byte, bool, bool, error) {
	if t.count == 0 || key < t.minKey || key > t.maxKey {
		return nil, false, false, nil
	}
	if !bloomMayContain(t.bloom, t.nbits, key) {
		return nil, false, false, nil
	}
	// Seek to greatest indexed key ≤ key.
	i := sort.Search(len(t.index), func(i int) bool { return t.index[i].key > key })
	if i == 0 {
		return nil, false, false, nil
	}
	off := int64(t.index[i-1].offset)
	r := bufio.NewReaderSize(io.NewSectionReader(t.f, off, int64(t.dataEnd)-off), 64<<10)
	for {
		e, err := readEntry(r)
		if err == io.EOF {
			return nil, false, false, nil
		}
		if err != nil {
			return nil, false, false, err
		}
		if e.key == key {
			return e.value, true, e.tombstone, nil
		}
		if e.key > key {
			return nil, false, false, nil
		}
	}
}

// iterate streams all entries in key order.
func (t *sstable) iterate(fn func(ssEntry) bool) error {
	r := bufio.NewReaderSize(io.NewSectionReader(t.f, 8, int64(t.dataEnd)-8), 1<<20)
	for {
		e, err := readEntry(r)
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if !fn(e) {
			return nil
		}
	}
}

func readEntry(r io.Reader) (ssEntry, error) {
	var hdr [8]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return ssEntry{}, err
	}
	kl := binary.LittleEndian.Uint32(hdr[0:])
	vl := binary.LittleEndian.Uint32(hdr[4:])
	tomb := vl == tombstoneMark
	if tomb {
		vl = 0
	}
	buf := make([]byte, int(kl)+int(vl)+4)
	if _, err := io.ReadFull(r, buf); err != nil {
		return ssEntry{}, fmt.Errorf("kvstore: truncated sstable entry: %w", err)
	}
	key := string(buf[:kl])
	val := buf[kl : kl+vl]
	crc := crc32.ChecksumIEEE(buf[:kl])
	if !tomb {
		crc = crc32.Update(crc, crc32.IEEETable, val)
	}
	if crc != binary.LittleEndian.Uint32(buf[kl+vl:]) {
		return ssEntry{}, fmt.Errorf("kvstore: sstable entry %q corrupt (crc mismatch)", key)
	}
	return ssEntry{key: key, value: val, tombstone: tomb}, nil
}

// --- bloom filter ----------------------------------------------------------

func bloomHashes(key string) (uint64, uint64) {
	h := fnv.New64a()
	h.Write([]byte(key))
	h1 := h.Sum64()
	h.Write([]byte{0x9d})
	return h1, h.Sum64()
}

func bloomSet(bits []uint64, nbits uint32, key string) {
	h1, h2 := bloomHashes(key)
	for k := uint64(0); k < 7; k++ {
		bit := (h1 + k*h2) % uint64(nbits)
		bits[bit/64] |= 1 << (bit % 64)
	}
}

func bloomMayContain(bits []uint64, nbits uint32, key string) bool {
	h1, h2 := bloomHashes(key)
	for k := uint64(0); k < 7; k++ {
		bit := (h1 + k*h2) % uint64(nbits)
		if bits[bit/64]&(1<<(bit%64)) == 0 {
			return false
		}
	}
	return true
}
