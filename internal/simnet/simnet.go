// Package simnet is a deterministic discrete-event simulator of shared
// bandwidth resources. The figure harnesses use it to run paper-scale
// configurations (hundreds of GPUs writing to providers or a parallel file
// system) in milliseconds of wall time while preserving the contention
// behaviour that shapes the results.
//
// The model: a Net holds resources (NIC links, OSTs, provider ingest
// queues), each with a capacity in bytes per virtual second. A flow is a
// transfer of N bytes that traverses one or more resources. At any instant
// the simulator assigns flows max-min fair rates via progressive filling:
// the bottleneck resource's fair share freezes its flows, residual capacity
// is redistributed, and so on. Time advances to the next flow completion or
// timer; callbacks then mutate the flow set.
//
// The simulator is single-threaded and deterministic: equal inputs produce
// equal schedules, which keeps the reproduced figures stable run-to-run.
//
// Paper counterpart: the evaluation methodology of §5 — the ALCF Polaris
// runs (hundreds of GPUs against 8–32 providers or a Lustre file system)
// are replayed here as bandwidth-contention schedules instead of real
// hardware.
//
// Contracts: a Net and everything reachable from it are confined to one
// goroutine; no method is safe for concurrent use. Run is not idempotent —
// it consumes the event queue — but is reproducible: re-building the same
// scenario replays the identical schedule.
package simnet

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Resource is a capacity-limited stage flows traverse.
type Resource struct {
	Name     string
	Capacity float64 // bytes per virtual second

	id    int
	flows map[*Flow]struct{}
}

// Flow is one in-flight transfer.
type Flow struct {
	id        uint64
	remaining float64
	rate      float64
	eta       float64 // predicted completion time, refreshed each step
	path      []*Resource
	onDone    func(now float64)
}

// Remaining returns the bytes left to transfer (for inspection).
func (f *Flow) Remaining() float64 { return f.remaining }

// timer is a scheduled callback.
type timer struct {
	at  float64
	seq uint64
	fn  func(now float64)
}

type timerHeap []timer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h timerHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *timerHeap) Push(x any)   { *h = append(*h, x.(timer)) }
func (h *timerHeap) Pop() any     { old := *h; n := len(old); x := old[n-1]; *h = old[:n-1]; return x }
func (h timerHeap) peek() (timer, bool) {
	if len(h) == 0 {
		return timer{}, false
	}
	return h[0], true
}

// Net is one simulation instance.
type Net struct {
	now       float64
	seq       uint64
	resources []*Resource
	flows     map[*Flow]struct{}
	timers    timerHeap
	dirty     bool // flow set changed since last rate computation
}

// New returns an empty simulation at time 0.
func New() *Net {
	return &Net{flows: make(map[*Flow]struct{})}
}

// Now returns the current virtual time in seconds.
func (n *Net) Now() float64 { return n.now }

// AddResource registers a capacity-limited resource.
func (n *Net) AddResource(name string, capacity float64) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("simnet: resource %q capacity must be positive", name))
	}
	r := &Resource{Name: name, Capacity: capacity, id: len(n.resources), flows: make(map[*Flow]struct{})}
	n.resources = append(n.resources, r)
	return r
}

// StartFlow begins transferring bytes across path, invoking onDone (which
// may start further flows or timers) when the last byte arrives. A zero or
// negative byte count completes at the current time via a timer.
func (n *Net) StartFlow(bytes float64, path []*Resource, onDone func(now float64)) *Flow {
	if bytes <= 0 {
		n.At(0, onDone)
		return nil
	}
	if len(path) == 0 {
		panic("simnet: flow needs at least one resource")
	}
	n.seq++
	f := &Flow{id: n.seq, remaining: bytes, path: path, onDone: onDone}
	n.flows[f] = struct{}{}
	for _, r := range path {
		r.flows[f] = struct{}{}
	}
	n.dirty = true
	return f
}

// At schedules fn to run delay virtual seconds from now (0 = as soon as
// the event loop regains control, still deterministic).
func (n *Net) At(delay float64, fn func(now float64)) {
	if delay < 0 {
		delay = 0
	}
	n.seq++
	heap.Push(&n.timers, timer{at: n.now + delay, seq: n.seq, fn: fn})
}

// recomputeRates runs progressive filling over the active flows.
func (n *Net) recomputeRates() {
	if len(n.flows) == 0 {
		return
	}
	type resState struct {
		residual float64
		active   int
	}
	states := make([]resState, len(n.resources))
	for _, r := range n.resources {
		states[r.id] = resState{residual: r.Capacity, active: 0}
	}
	frozen := make(map[*Flow]bool, len(n.flows))
	for f := range n.flows {
		f.rate = 0
		for _, r := range f.path {
			states[r.id].active++
		}
	}
	remaining := len(n.flows)
	for remaining > 0 {
		// Find the bottleneck: minimum fair share among resources with
		// active flows.
		share := math.Inf(1)
		bottleneck := -1
		for id := range states {
			s := &states[id]
			if s.active == 0 {
				continue
			}
			if fs := s.residual / float64(s.active); fs < share {
				share = fs
				bottleneck = id
			}
		}
		if bottleneck < 0 {
			break
		}
		// Freeze every unfrozen flow crossing the bottleneck at the share.
		br := n.resources[bottleneck]
		var toFreeze []*Flow
		for f := range br.flows {
			if !frozen[f] {
				toFreeze = append(toFreeze, f)
			}
		}
		if len(toFreeze) == 0 {
			states[bottleneck].active = 0
			continue
		}
		for _, f := range toFreeze {
			frozen[f] = true
			f.rate = share
			remaining--
			for _, r := range f.path {
				states[r.id].residual -= share
				states[r.id].active--
				if states[r.id].residual < 0 {
					states[r.id].residual = 0
				}
			}
		}
	}
	n.dirty = false
}

const eps = 1e-9

// step advances the simulation by one event. It reports false when no
// events remain.
//
// Completion is detected via each flow's predicted completion time (eta)
// rather than by comparing the decremented byte counter against an absolute
// epsilon: "remaining -= rate·dt" leaves O(ulp·remaining) residue, and an
// absolute threshold either strands large flows (infinite sub-byte steps)
// or spuriously completes tiny ones.
func (n *Net) step() bool {
	if len(n.flows) == 0 && len(n.timers) == 0 {
		return false
	}
	if n.dirty {
		n.recomputeRates()
	}
	// Earliest flow completion.
	tFlow := math.Inf(1)
	for f := range n.flows {
		if f.rate <= 0 {
			f.eta = math.Inf(1)
			continue
		}
		f.eta = n.now + f.remaining/f.rate
		if f.eta < tFlow {
			tFlow = f.eta
		}
	}
	tTimer := math.Inf(1)
	if tm, ok := n.timers.peek(); ok {
		tTimer = tm.at
	}
	t := math.Min(tFlow, tTimer)
	if math.IsInf(t, 1) {
		// Flows exist but none can progress: capacity misconfiguration.
		panic("simnet: deadlock — active flows with zero rate and no timers")
	}

	// Advance all flows to time t.
	dt := t - n.now
	if dt > 0 {
		for f := range n.flows {
			f.remaining -= f.rate * dt
			if f.remaining < 0 {
				f.remaining = 0
			}
		}
	}
	n.now = t

	// Collect completions deterministically (by flow id): every flow whose
	// predicted completion is within relative tolerance of now.
	tol := eps * (1 + math.Abs(n.now))
	var done []*Flow
	for f := range n.flows {
		if f.eta <= n.now+tol || f.remaining <= 0 {
			done = append(done, f)
		}
	}
	sort.Slice(done, func(i, j int) bool { return done[i].id < done[j].id })
	for _, f := range done {
		delete(n.flows, f)
		for _, r := range f.path {
			delete(r.flows, f)
		}
		n.dirty = true
	}
	// Fire due timers (before callbacks of flows? deterministic rule:
	// timers first when at the same instant — they were scheduled earlier).
	var fired []timer
	for {
		tm, ok := n.timers.peek()
		if !ok || tm.at > n.now+eps {
			break
		}
		fired = append(fired, heap.Pop(&n.timers).(timer))
	}
	for _, tm := range fired {
		tm.fn(n.now)
	}
	for _, f := range done {
		if f.onDone != nil {
			f.onDone(n.now)
		}
	}
	return true
}

// Run processes events until none remain and returns the final time.
func (n *Net) Run() float64 {
	for n.step() {
	}
	return n.now
}

// RunUntil processes events with timestamps ≤ deadline and then sets the
// clock to deadline (if it is later than the last event).
func (n *Net) RunUntil(deadline float64) float64 {
	for {
		if len(n.flows) == 0 && len(n.timers) == 0 {
			break
		}
		if n.dirty {
			n.recomputeRates()
		}
		tFlow := math.Inf(1)
		for f := range n.flows {
			if f.rate > 0 {
				if t := n.now + f.remaining/f.rate; t < tFlow {
					tFlow = t
				}
			}
		}
		tTimer := math.Inf(1)
		if tm, ok := n.timers.peek(); ok {
			tTimer = tm.at
		}
		if math.Min(tFlow, tTimer) > deadline {
			break
		}
		n.step()
	}
	// Advance idle flows' progress up to the deadline.
	if deadline > n.now {
		dt := deadline - n.now
		for f := range n.flows {
			f.remaining -= f.rate * dt
		}
		n.now = deadline
	}
	return n.now
}

// ActiveFlows returns the number of in-flight flows (for tests).
func (n *Net) ActiveFlows() int { return len(n.flows) }
