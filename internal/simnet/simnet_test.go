package simnet

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-6*(1+math.Abs(b)) }

func TestSingleFlow(t *testing.T) {
	n := New()
	link := n.AddResource("link", 100) // 100 B/s
	var doneAt float64
	n.StartFlow(1000, []*Resource{link}, func(now float64) { doneAt = now })
	end := n.Run()
	if !almost(doneAt, 10) || !almost(end, 10) {
		t.Errorf("doneAt=%v end=%v, want 10", doneAt, end)
	}
}

func TestFairSharing(t *testing.T) {
	// Two equal flows share the link: both finish at 2×.
	n := New()
	link := n.AddResource("link", 100)
	var times []float64
	for i := 0; i < 2; i++ {
		n.StartFlow(1000, []*Resource{link}, func(now float64) { times = append(times, now) })
	}
	n.Run()
	if len(times) != 2 || !almost(times[0], 20) || !almost(times[1], 20) {
		t.Errorf("times = %v, want both 20", times)
	}
}

func TestShortFlowReleasesBandwidth(t *testing.T) {
	// A 1000B and a 100B flow: the short one finishes at t=2 (50 B/s each),
	// then the long one gets full bandwidth: 900 left at 100 B/s → t=11.
	n := New()
	link := n.AddResource("link", 100)
	var longDone, shortDone float64
	n.StartFlow(1000, []*Resource{link}, func(now float64) { longDone = now })
	n.StartFlow(100, []*Resource{link}, func(now float64) { shortDone = now })
	n.Run()
	if !almost(shortDone, 2) {
		t.Errorf("shortDone = %v, want 2", shortDone)
	}
	if !almost(longDone, 11) {
		t.Errorf("longDone = %v, want 11", longDone)
	}
}

func TestMultiResourceBottleneck(t *testing.T) {
	// Flow crosses NIC (1000 B/s) and OST (100 B/s): rate = min = 100.
	n := New()
	nic := n.AddResource("nic", 1000)
	ost := n.AddResource("ost", 100)
	var doneAt float64
	n.StartFlow(1000, []*Resource{nic, ost}, func(now float64) { doneAt = now })
	n.Run()
	if !almost(doneAt, 10) {
		t.Errorf("doneAt = %v, want 10", doneAt)
	}
}

func TestMaxMinFairness(t *testing.T) {
	// Classic water-filling: flows A (link1 only), B (link1+link2), C
	// (link2 only). link1 = 100, link2 = 40. B is bottlenecked on link2:
	// B and C get 20 each; A gets the rest of link1 = 80.
	n := New()
	l1 := n.AddResource("l1", 100)
	l2 := n.AddResource("l2", 40)
	fa := n.StartFlow(1e9, []*Resource{l1}, nil)
	fb := n.StartFlow(1e9, []*Resource{l1, l2}, nil)
	fc := n.StartFlow(1e9, []*Resource{l2}, nil)
	n.recomputeRates()
	if !almost(fb.rate, 20) || !almost(fc.rate, 20) {
		t.Errorf("B=%v C=%v, want 20 each", fb.rate, fc.rate)
	}
	if !almost(fa.rate, 80) {
		t.Errorf("A=%v, want 80", fa.rate)
	}
}

func TestTimers(t *testing.T) {
	n := New()
	var fired []float64
	n.At(5, func(now float64) { fired = append(fired, now) })
	n.At(1, func(now float64) {
		fired = append(fired, now)
		n.At(2, func(now float64) { fired = append(fired, now) })
	})
	n.Run()
	want := []float64{1, 3, 5}
	if len(fired) != 3 {
		t.Fatalf("fired = %v", fired)
	}
	for i := range want {
		if !almost(fired[i], want[i]) {
			t.Errorf("fired[%d] = %v, want %v", i, fired[i], want[i])
		}
	}
}

func TestZeroByteFlowCompletesImmediately(t *testing.T) {
	n := New()
	fired := false
	n.StartFlow(0, nil, func(now float64) { fired = now == 0 })
	n.Run()
	if !fired {
		t.Error("zero-byte flow did not complete at t=0")
	}
}

func TestChainedFlows(t *testing.T) {
	// Sequential dependency via callback: 500B then 500B on a 100 B/s link.
	n := New()
	link := n.AddResource("link", 100)
	var end float64
	n.StartFlow(500, []*Resource{link}, func(now float64) {
		n.StartFlow(500, []*Resource{link}, func(now float64) { end = now })
	})
	n.Run()
	if !almost(end, 10) {
		t.Errorf("end = %v, want 10", end)
	}
}

func TestRunUntil(t *testing.T) {
	n := New()
	link := n.AddResource("link", 100)
	done := false
	n.StartFlow(1000, []*Resource{link}, func(float64) { done = true })
	n.RunUntil(5)
	if done {
		t.Error("flow completed early")
	}
	if !almost(n.Now(), 5) {
		t.Errorf("Now = %v, want 5", n.Now())
	}
	n.Run()
	if !done || !almost(n.Now(), 10) {
		t.Errorf("after Run: done=%v now=%v", done, n.Now())
	}
}

func TestWeakScalingAggregateBandwidth(t *testing.T) {
	// N writers each with a private NIC (200 B/s) into a shared pool of
	// N/2 servers (200 B/s each, one flow per server chosen round-robin):
	// servers are the bottleneck with 2 flows each → aggregate = N/2×200.
	for _, workers := range []int{4, 8, 16} {
		n := New()
		servers := make([]*Resource, workers/2)
		for i := range servers {
			servers[i] = n.AddResource("srv", 200)
		}
		finish := make([]float64, 0, workers)
		for w := 0; w < workers; w++ {
			nic := n.AddResource("nic", 200)
			srv := servers[w%len(servers)]
			n.StartFlow(1000, []*Resource{nic, srv}, func(now float64) {
				finish = append(finish, now)
			})
		}
		n.Run()
		// Each server carries 2 flows at 100 B/s → every flow takes 10 s.
		for _, f := range finish {
			if !almost(f, 10) {
				t.Errorf("workers=%d: finish=%v, want 10", workers, f)
			}
		}
	}
}

// Property: total bytes delivered equals total bytes injected, and
// completion order respects size order for same-path same-start flows.
func TestQuickConservation(t *testing.T) {
	f := func(sizes []uint16) bool {
		if len(sizes) == 0 || len(sizes) > 50 {
			return true
		}
		n := New()
		link := n.AddResource("link", 1000)
		type rec struct {
			size float64
			at   float64
		}
		var recs []rec
		for _, s := range sizes {
			size := float64(s%5000) + 1
			n.StartFlow(size, []*Resource{link}, func(now float64) {
				recs = append(recs, rec{size: size, at: now})
			})
		}
		end := n.Run()
		if len(recs) != len(sizes) {
			return false
		}
		var total float64
		for _, r := range recs {
			total += r.size
		}
		// All bandwidth is consumed by this single link, so the makespan
		// must equal total/capacity.
		if !almost(end, total/1000) {
			return false
		}
		// Smaller flows finish no later than larger ones.
		sorted := append([]rec(nil), recs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].size < sorted[j].size })
		for i := 1; i < len(sorted); i++ {
			if sorted[i].at+1e-6 < sorted[i-1].at {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		n := New()
		l1 := n.AddResource("l1", 123)
		l2 := n.AddResource("l2", 77)
		var times []float64
		for i := 0; i < 20; i++ {
			path := []*Resource{l1}
			if i%3 == 0 {
				path = []*Resource{l1, l2}
			}
			n.StartFlow(float64(100+i*37), path, func(now float64) { times = append(times, now) })
		}
		n.At(0.5, func(now float64) {
			n.StartFlow(500, []*Resource{l2}, func(now float64) { times = append(times, now) })
		})
		n.Run()
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatal("different event counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func BenchmarkThousandFlows(b *testing.B) {
	for i := 0; i < b.N; i++ {
		n := New()
		servers := make([]*Resource, 16)
		for j := range servers {
			servers[j] = n.AddResource("srv", 1e9)
		}
		for w := 0; w < 1000; w++ {
			nic := n.AddResource("nic", 25e9)
			n.StartFlow(4e9/100, []*Resource{nic, servers[w%16]}, nil)
		}
		n.Run()
	}
}

// Property: under progressive filling no flow's rate exceeds any of its
// resources' capacities, and each resource's total allocated rate stays
// within capacity (max-min feasibility).
func TestQuickFairnessFeasible(t *testing.T) {
	f := func(seed int64, nFlows, nRes uint8) bool {
		r := rand.New(rand.NewSource(seed))
		n := New()
		resources := make([]*Resource, 1+int(nRes%6))
		for i := range resources {
			resources[i] = n.AddResource("r", 10+float64(r.Intn(1000)))
		}
		var flows []*Flow
		for i := 0; i < 1+int(nFlows%20); i++ {
			var path []*Resource
			used := map[int]bool{}
			for len(path) == 0 || (r.Intn(2) == 0 && len(path) < len(resources)) {
				idx := r.Intn(len(resources))
				if !used[idx] {
					used[idx] = true
					path = append(path, resources[idx])
				}
			}
			flows = append(flows, n.StartFlow(1e9, path, nil))
		}
		n.recomputeRates()
		for _, res := range resources {
			var total float64
			for f := range res.flows {
				total += f.rate
			}
			if total > res.Capacity*(1+1e-9) {
				return false
			}
		}
		for _, f := range flows {
			if f.rate <= 0 {
				return false // work-conserving: every flow gets bandwidth
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
