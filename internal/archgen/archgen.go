// Package archgen generates model architectures for the micro-benchmarks
// (paper §5.3): a parameterized uniform generator that controls total model
// size, leaf-layer count and the fraction of layers shared with a base
// model (driving the incremental-storage experiments), and a DeepSpace-like
// generator producing diverse, branchy architectures with submodels
// (driving the LCP query experiments).
package archgen

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
)

// UniformOptions parameterizes the incremental-storage generator.
type UniformOptions struct {
	// TotalBytes is the target total parameter payload. Default 64 MiB.
	TotalBytes int64
	// Layers is the number of parameter-bearing leaf layers. Default 100.
	Layers int
	// Variant tags the non-shared suffix so two variants with the same
	// SharedFraction differ architecturally after the shared prefix.
	Variant uint64
	// SharedFraction is the fraction of layers (from the input) whose
	// configuration matches every other model generated with the same
	// TotalBytes/Layers (regardless of Variant). 1.0 = identical models.
	SharedFraction float64
}

func (o *UniformOptions) setDefaults() {
	if o.TotalBytes <= 0 {
		o.TotalBytes = 64 << 20
	}
	if o.Layers <= 0 {
		o.Layers = 100
	}
	if o.SharedFraction < 0 {
		o.SharedFraction = 0
	}
	if o.SharedFraction > 1 {
		o.SharedFraction = 1
	}
}

// Uniform builds a sequential model of Layers evenly sized dense layers
// totalling TotalBytes of parameters. The first SharedFraction×Layers
// layers are identical across variants; the rest carry the Variant tag in
// their configuration, so the LCP between any two variants is exactly the
// shared prefix (plus the input vertex).
func Uniform(opts UniformOptions) (*model.Flat, error) {
	opts.setDefaults()
	perLayer := opts.TotalBytes / int64(opts.Layers)
	units := int(perLayer / 4) // Dense{In:1,Out:units} has a 4×units-byte kernel
	if units < 1 {
		units = 1
	}
	shared := int(opts.SharedFraction * float64(opts.Layers))

	layers := make([]model.Layer, opts.Layers)
	for i := range layers {
		act := "relu"
		if i >= shared {
			// The variant tag changes ConfigSig without changing size.
			act = fmt.Sprintf("relu-v%d", opts.Variant)
		}
		layers[i] = model.Dense{In: 1, Out: units, Activation: act}
	}
	m := model.Sequential(fmt.Sprintf("uniform-%d", opts.Variant), 1, layers...)
	return model.Flatten(m)
}

// SpaceOptions parameterizes the DeepSpace-like generator.
type SpaceOptions struct {
	// MinCells/MaxCells bound the number of cells (stacked blocks).
	MinCells, MaxCells int
	// Width is the feature dimension used throughout.
	Width int
	// SkipProb is the probability a cell adds a skip connection (creating
	// fork-join vertices).
	SkipProb float64
	// SubmodelProb is the probability a cell is wrapped in a nested
	// submodel (exercising recursive flattening).
	SubmodelProb float64
}

func (o *SpaceOptions) setDefaults() {
	if o.MinCells <= 0 {
		o.MinCells = 3
	}
	if o.MaxCells < o.MinCells {
		o.MaxCells = o.MinCells + 7
	}
	if o.Width <= 0 {
		o.Width = 16
	}
	if o.SkipProb == 0 {
		o.SkipProb = 0.3
	}
	if o.SubmodelProb == 0 {
		o.SubmodelProb = 0.25
	}
}

// cellOps is the operation menu, mirroring a NAS cell search space.
func cellOps(width int) []func(tag int) model.Layer {
	return []func(tag int) model.Layer{
		func(tag int) model.Layer { return model.Dense{In: width, Out: width, Activation: "relu"} },
		func(tag int) model.Layer { return model.Dense{In: width, Out: width, Activation: "tanh"} },
		func(tag int) model.Layer {
			return model.Dense{In: width, Out: width, Activation: "gelu", UseBias: true}
		},
		func(tag int) model.Layer { return model.LayerNorm{Dim: width} },
		func(tag int) model.Layer { return model.BatchNorm{Dim: width} },
		func(tag int) model.Layer { return model.Dropout{Rate100: 10 + 10*(tag%5)} },
		func(tag int) model.Layer { return model.MultiHeadAttention{Dim: width, Heads: 2} },
		func(tag int) model.Layer { return model.Identity{} },
	}
}

// Space generates a random architecture from the space defined by opts
// using r. Models from the same space share structure probabilistically,
// which yields the non-trivial LCP distribution the query benchmarks need.
func Space(r *rand.Rand, opts SpaceOptions) (*model.Flat, error) {
	opts.setDefaults()
	ops := cellOps(opts.Width)

	m := model.New("space")
	cur := m.Input("input", opts.Width)
	cells := opts.MinCells + r.Intn(opts.MaxCells-opts.MinCells+1)
	for c := 0; c < cells; c++ {
		opIdx := r.Intn(len(ops))
		layer := ops[opIdx](c)
		name := fmt.Sprintf("cell%d_op%d", c, opIdx)

		useSkip := r.Float64() < opts.SkipProb
		useSub := r.Float64() < opts.SubmodelProb

		var out *model.Node
		if useSub {
			sub := model.New(fmt.Sprintf("sub%d", c))
			sin := sub.Input("in", opts.Width)
			sOut := sub.Apply(layer, "op", sin)
			// Submodels occasionally stack a second op.
			if r.Intn(2) == 0 {
				opIdx2 := r.Intn(len(ops))
				sOut = sub.Apply(ops[opIdx2](c), "op2", sOut)
			}
			sub.SetOutputs(sOut)
			out = m.Apply(model.Submodel{M: sub}, name, cur)
		} else {
			out = m.Apply(layer, name, cur)
		}
		if useSkip {
			out = m.Apply(model.Add{}, fmt.Sprintf("cell%d_skip", c), cur, out)
		}
		cur = out
	}
	head := m.Apply(model.Dense{In: opts.Width, Out: 1 + r.Intn(8), Activation: "softmax"}, "head", cur)
	m.SetOutputs(head)
	return model.Flatten(m)
}

// Catalog generates n architectures from the space, seeded for
// reproducibility.
func Catalog(seed int64, n int, opts SpaceOptions) ([]*model.Flat, error) {
	r := rand.New(rand.NewSource(seed))
	out := make([]*model.Flat, n)
	for i := range out {
		f, err := Space(r, opts)
		if err != nil {
			return nil, err
		}
		out[i] = f
	}
	return out, nil
}
