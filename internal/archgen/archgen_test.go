package archgen

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func TestUniformSizeAndLayers(t *testing.T) {
	f, err := Uniform(UniformOptions{TotalBytes: 1 << 20, Layers: 50, SharedFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	// 50 dense layers + 1 input vertex.
	if f.NumLeaves() != 51 {
		t.Fatalf("NumLeaves = %d", f.NumLeaves())
	}
	total := f.TotalParamBytes()
	if total < (1<<20)*95/100 || total > (1<<20)*105/100 {
		t.Errorf("TotalParamBytes = %d, want ≈1MiB", total)
	}
	// Evenly sized: every dense vertex carries the same payload.
	first := f.Graph.Vertices[1].ParamBytes
	for v := 2; v < f.NumLeaves(); v++ {
		if f.Graph.Vertices[v].ParamBytes != first {
			t.Fatalf("vertex %d payload %d != %d", v, f.Graph.Vertices[v].ParamBytes, first)
		}
	}
}

func TestUniformSharedFractionControlsLCP(t *testing.T) {
	for _, frac := range []float64{0.25, 0.5, 0.75} {
		a, err := Uniform(UniformOptions{TotalBytes: 1 << 16, Layers: 100, Variant: 1, SharedFraction: frac})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Uniform(UniformOptions{TotalBytes: 1 << 16, Layers: 100, Variant: 2, SharedFraction: frac})
		if err != nil {
			t.Fatal(err)
		}
		lcp := graph.LCPSize(a.Graph, b.Graph)
		want := int(frac*100) + 1 // shared layers + input vertex
		if lcp != want {
			t.Errorf("frac=%v: LCP=%d, want %d", frac, lcp, want)
		}
	}
}

func TestUniformFullShareIsIdentical(t *testing.T) {
	a, _ := Uniform(UniformOptions{Variant: 1, SharedFraction: 1, Layers: 10, TotalBytes: 1 << 12})
	b, _ := Uniform(UniformOptions{Variant: 2, SharedFraction: 1, Layers: 10, TotalBytes: 1 << 12})
	if !a.Graph.Equal(b.Graph) {
		t.Error("fully shared variants differ")
	}
}

func TestUniformClampsFraction(t *testing.T) {
	f, err := Uniform(UniformOptions{SharedFraction: 2.5, Layers: 4, TotalBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if f.NumLeaves() != 5 {
		t.Errorf("NumLeaves = %d", f.NumLeaves())
	}
}

func TestSpaceGeneratesValidDiverseGraphs(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	opts := SpaceOptions{MinCells: 4, MaxCells: 12, Width: 8}
	sizes := map[int]bool{}
	forkJoin := false
	for i := 0; i < 50; i++ {
		f, err := Space(r, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := f.Graph.Validate(); err != nil {
			t.Fatalf("model %d invalid: %v", i, err)
		}
		sizes[f.NumLeaves()] = true
		for v := 0; v < f.NumLeaves(); v++ {
			if f.Graph.InDegree(graph.VertexID(v)) > 1 {
				forkJoin = true
			}
		}
	}
	if len(sizes) < 5 {
		t.Errorf("only %d distinct sizes in 50 samples — not diverse", len(sizes))
	}
	if !forkJoin {
		t.Error("no fork-join vertices generated despite skip connections")
	}
}

func TestSpaceSharedPrefixesExist(t *testing.T) {
	// Architectures from the same space must occasionally share non-trivial
	// prefixes — that is what makes the LCP workload meaningful.
	cat, err := Catalog(7, 200, SpaceOptions{Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	nontrivial := 0
	for i := 1; i < len(cat); i++ {
		if graph.LCPSize(cat[0].Graph, cat[i].Graph) >= 2 {
			nontrivial++
		}
	}
	if nontrivial < 10 {
		t.Errorf("only %d/199 catalog entries share a ≥2-vertex prefix", nontrivial)
	}
}

func TestCatalogReproducible(t *testing.T) {
	a, err := Catalog(42, 20, SpaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Catalog(42, 20, SpaceOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !a[i].Graph.Equal(b[i].Graph) {
			t.Fatalf("catalog entry %d differs between runs", i)
		}
	}
}

func BenchmarkSpaceGeneration(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	opts := SpaceOptions{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Space(r, opts); err != nil {
			b.Fatal(err)
		}
	}
}
