package core

import (
	"context"
	"testing"

	"repro/internal/kvstore"
	"repro/internal/model"
)

// TestKillRestartProvider exercises the embedded crash/restart cycle: a
// killed provider's endpoint vanishes (writes become partials, reads fail
// over), and a restart on the surviving backend replays the durable
// catalog so one repair pass reconverges the replica sets.
func TestKillRestartProvider(t *testing.T) {
	backends := make([]kvstore.KV, 4)
	repo, err := Open(Options{
		Providers:      4,
		Replicas:       2,
		PartialWrites:  true,
		DurableCatalog: true,
		Backend: func(i int) kvstore.KV {
			backends[i] = kvstore.NewMemKV(16)
			return backends[i]
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()

	ctx := context.Background()
	f := mlp(t, 3, 8, 4)
	var ids []ModelID
	for i := 0; i < 6; i++ {
		id, err := repo.Store(ctx, f, model.Materialize(f, uint64(i+1)), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}

	const target = 1
	if err := repo.KillProvider(target); err != nil {
		t.Fatal(err)
	}
	if repo.Providers()[target] != nil {
		t.Fatal("killed provider still exposed")
	}
	// The workload continues: writes partial, reads fail over.
	outageID, err := repo.Store(ctx, f, model.Materialize(f, 100), 0.5)
	if err != nil {
		t.Fatalf("store during outage: %v", err)
	}
	ids = append(ids, outageID)
	for _, id := range ids {
		if _, _, err := repo.Load(ctx, id); err != nil {
			t.Fatalf("load %d during outage: %v", id, err)
		}
	}

	// Restart on the surviving backend (a MemKV here, so "reopening the
	// data dir" is just reusing the map the catalog was written through).
	survivorState := repo.Providers()[(target+1)%4].PlacementState()
	if err := repo.RestartProvider(target, backends[target], survivorState); err != nil {
		t.Fatal(err)
	}
	// The replayed catalog knows the pre-kill era; only the outage store
	// should diverge.
	diverged, err := repo.RepairCheck(ctx)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range diverged {
		for _, pre := range ids[:len(ids)-1] {
			if id == pre && !contains(repo.ReplicaSet(outageID), target) {
				// Pre-kill models may only diverge if the catalog was lost.
				t.Errorf("pre-kill model %d diverged after restart: catalog not replayed", id)
			}
		}
	}
	if _, err := repo.RepairAll(ctx); err != nil {
		t.Fatal(err)
	}
	if diverged, err := repo.RepairCheck(ctx); err != nil {
		t.Fatal(err)
	} else if len(diverged) != 0 {
		t.Fatalf("still diverged after repair: %v", diverged)
	}
	provs := repo.Providers()
	for _, id := range ids {
		set := repo.ReplicaSet(id)
		d0 := provs[set[0]].Digest(id)
		for _, pi := range set[1:] {
			if di := provs[pi].Digest(id); !d0.Converged(di) {
				t.Errorf("model %d digests diverged between replicas %d and %d", id, set[0], pi)
			}
		}
	}

	// Drain: nothing lost or duplicated across the crash.
	for _, id := range ids {
		if _, err := repo.Retire(ctx, id); err != nil {
			t.Fatalf("retire %d: %v", id, err)
		}
	}
	stats, err := repo.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Models != 0 || stats.Segments != 0 || stats.LiveRefs != 0 {
		t.Errorf("repository did not drain after crash/restart: %+v", stats)
	}
}

func contains(set []int, x int) bool {
	for _, v := range set {
		if v == x {
			return true
		}
	}
	return false
}

// TestKillRestartBounds: out-of-range and attached-deployment calls fail
// cleanly instead of panicking.
func TestKillRestartBounds(t *testing.T) {
	repo := openRepo(t, 2)
	if err := repo.KillProvider(7); err == nil {
		t.Error("KillProvider(7) on a 2-provider deployment succeeded")
	}
	if err := repo.RestartProvider(-1, kvstore.NewMemKV(1), nil); err == nil {
		t.Error("RestartProvider(-1) succeeded")
	}
	attached := &Repository{} // attached deployments own no providers
	if err := attached.KillProvider(0); err == nil {
		t.Error("KillProvider on an attached deployment succeeded")
	}
}
