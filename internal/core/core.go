// Package core is the public face of EvoStore: a distributed repository for
// evolving deep-learning models. A Repository stores models as compact
// leaf-layer architecture graphs plus per-vertex tensor segments spread
// over a set of providers, shares unmodified tensors between derived models
// through owner maps, answers longest-common-prefix (LCP) queries to find
// the best transfer-learning ancestor, retires models with distributed
// reference-counting GC, and serves provenance queries from owner maps.
//
// Typical transfer-learning round trip (the NAS inner loop of paper §2):
//
//	anc, found, _ := repo.BestAncestor(ctx, flat)      // collective LCP query
//	ws := model.Materialize(flat, seed)                // fresh weights
//	if found {
//	    repo.TransferPrefix(ctx, flat, ws, anc)        // read inherited tensors
//	}
//	train(ws, frozen: anc.Prefix)                      // only non-frozen change
//	id, _ := repo.StoreDerived(ctx, flat, ws, q, anc, nil) // writes the diff
package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/client"
	"repro/internal/dedup"
	"repro/internal/frontdoor"
	"repro/internal/graph"
	"repro/internal/heat"
	"repro/internal/kvstore"
	"repro/internal/model"
	"repro/internal/ownermap"
	"repro/internal/placement"
	"repro/internal/proto"
	"repro/internal/provider"
	"repro/internal/resilient"
	"repro/internal/rpc"
	"repro/internal/tensor"
)

// ModelID identifies a model in the repository.
type ModelID = ownermap.ModelID

// Repository is a handle on an EvoStore deployment. All methods are safe
// for concurrent use.
type Repository struct {
	cli    *client.Client
	nextID atomic.Uint64
	seq    atomic.Uint64

	repOnce  sync.Once
	repairer *client.Repairer

	rebOnce    sync.Once
	rebalancer *client.Rebalancer

	balOnce  sync.Once
	balancer *heat.Controller
	balStop  context.CancelFunc // cancels the AutoBalance loop; nil when not running

	// embedded deployment resources (nil when attached to remote providers)
	owned  []*provider.Provider
	net    *rpc.InprocNet
	conns  []rpc.Conn
	faults []*rpc.FaultConn
	opts   Options // normalized Open options, kept for RestartProvider

	dedupOn bool        // Options.Dedup: build delta plans in StoreDerived
	cas     []*dedup.KV // per-provider CAS wrappers (nil entries where unwrapped)
}

// Options configures an embedded (in-process) deployment.
type Options struct {
	// Providers is the number of storage providers. Default 4.
	Providers int
	// SpareProviders adds providers (IDs Providers..Providers+Spare-1)
	// that run and are dialed but start outside the placement table: they
	// hold no data and reject writes until a rebalance (Rebalance, or
	// evostore-ctl placement add) joins them. The elasticity harnesses use
	// a spare as the join target.
	SpareProviders int
	// Backend constructs the KV store of provider i. Default: MemKV, the
	// analogue of the paper's in-memory synchronized pools.
	Backend func(i int) kvstore.KV
	// Faults, when non-nil, returns the fault-injection config for the
	// connection to provider i (nil = no faults for that provider). The
	// injected wrappers are reachable via FaultConns for runtime control
	// (e.g. partitioning a provider mid-run).
	Faults func(i int) *rpc.FaultConfig
	// Resilience, when non-nil, wraps every provider connection with the
	// resilient middleware (deadlines, retries, circuit breaker). The
	// Retryable policy defaults to proto.Retryable if unset.
	Resilience *resilient.Options
	// Replicas is the N-way replication factor: each model's metadata and
	// segments live on its home provider plus the next Replicas-1 hash
	// successors, writes fan out to all of them, and reads fail over
	// between them. Default 1 (the paper's single-homed placement);
	// clamped to Providers.
	Replicas int
	// StripeChunkBytes enables range-striped owner-group reads: groups
	// whose consolidated payload exceeds this size are fetched as
	// concurrent byte-range chunks (client.WithStripedReads). 0 (default)
	// disables striping. Mostly useful for TCP-attached deployments; the
	// in-process fabric is already zero-copy.
	StripeChunkBytes int
	// StripeParallel caps in-flight chunks per owner group (default 4).
	StripeParallel int
	// PartialWrites relaxes the all-replicas write contract: a replicated
	// mutation whose failed legs are all transient (outage-shaped) succeeds
	// as long as one replica accepted it, and the model is queued for
	// anti-entropy repair (client.Repairer) instead of the write being
	// undone. Only meaningful with Replicas > 1 and a running repairer.
	PartialWrites bool
	// Dedup enables the content-level capacity layer (internal/dedup): the
	// client delta-encodes modified tensors against their LCP ancestor's
	// segments, and every provider backend is wrapped with content-addressed
	// chunk storage. Reads always resolve encoded segments, so flipping this
	// on or off never breaks existing data.
	Dedup bool
	// DeltaMaxRatio is the largest (stored bytes / raw bytes) ratio worth
	// delta-encoding; larger deltas ship raw. 0 selects
	// client.DefaultDeltaMaxRatio. Only meaningful with Dedup.
	DeltaMaxRatio float64
	// DeltaMaxDepth bounds delta chains: a write whose base already sits at
	// the bound rebases to raw. 0 selects client.DefaultDeltaMaxDepth.
	// Only meaningful with Dedup.
	DeltaMaxDepth int
	// ColdCompress arms transparent cold-segment compression in the
	// providers' dedup wrappers: SweepCold DEFLATE-compresses segments and
	// chunks idle past a threshold. Implies wrapping backends like Dedup.
	ColdCompress bool
	// SegCacheBytes bounds the client's read-through segment cache, the
	// front door's caching layer (see docs/ARCHITECTURE.md). 0 keeps the
	// client default (64 MiB); negative disables caching.
	SegCacheBytes int64
	// Tenant stamps every read this handle issues, so the providers'
	// per-tenant admission control charges the right budget. Empty shares
	// the anonymous tenant's budget.
	Tenant string
	// ThrottleOpsPerSec / ThrottleBytesPerSec arm per-tenant token-bucket
	// read admission on every embedded provider. 0 on an axis leaves that
	// axis unlimited; both 0 leaves throttling off entirely.
	ThrottleOpsPerSec   float64
	ThrottleBytesPerSec float64
	// ThrottleWindow is the admission buckets' burst window (capacity =
	// rate x window). 0 selects the frontdoor default (60s).
	ThrottleWindow time.Duration
	// AutoBalance starts the heat-driven rebalancing controller
	// (internal/heat) on Open: it periodically reads every provider's
	// per-model heat, widens hot models' replica sets, packs cold ones,
	// and drives the epoch bumps itself. The loop stops at Close. Leave
	// false to run the controller manually via AutoBalancer.
	AutoBalance bool
	// AutoBalanceInterval is the controller cycle period (default 5s).
	AutoBalanceInterval time.Duration
	// HeatHotFactor / HeatColdFactor are the skew thresholds: a model
	// widens above HotFactor x mean heat, packs below ColdFactor x mean.
	// 0 selects the internal/heat defaults (4 and 0.25).
	HeatHotFactor  float64
	HeatColdFactor float64
	// HeatWiden / HeatPack are the replica counts hot and cold models
	// converge to. HeatWiden 0 means base R+1; HeatPack 0 disables
	// packing.
	HeatWiden int
	HeatPack  int
	// MigrationBudgetBytesPerSec paces rebalance payload movement (both
	// controller-driven and Rebalancer-driven via AutoBalancer's
	// rebalancer); 0 leaves migrations unpaced.
	MigrationBudgetBytesPerSec float64
	// HedgedReads arms tail-latency hedging on the client's replicated read
	// path (client.WithHedgedReads): when the preferred replica is slow to
	// answer, a second read launches against the next-best replica after an
	// adaptive, health-score-scaled delay and the first success wins. Only
	// meaningful with Replicas > 1.
	HedgedReads bool
	// HedgeBudget caps hedge volume in hedge launches per second (token
	// bucket); 0 selects the client default. Only meaningful with
	// HedgedReads.
	HedgeBudget float64
	// DurableCatalog builds providers with provider.NewDurable: catalog
	// state (model metadata, refcounts, journals, tombstones) is written
	// through to the KV backend and replayed on construction, so a provider
	// restarted on the same backend (KillProvider/RestartProvider, or an
	// evostore-server reopening its -data directory) resumes with its
	// pre-crash catalog instead of an empty one. Pointless on MemKV
	// backends that die with the provider; pair with durable Backend stores
	// (kvstore.OpenLSM).
	DurableCatalog bool
}

// Open creates an embedded deployment: providers and clients live in this
// process and communicate over the zero-copy in-process fabric (the RDMA
// analogue). This is the configuration used by examples, tests and the
// micro-benchmarks.
func Open(opts Options) (*Repository, error) {
	if opts.Providers <= 0 {
		opts.Providers = 4
	}
	if opts.Backend == nil {
		opts.Backend = func(int) kvstore.KV { return kvstore.NewMemKV(16) }
	}
	if opts.Replicas < 1 {
		opts.Replicas = 1
	}
	if opts.Replicas > opts.Providers {
		opts.Replicas = opts.Providers
	}
	if opts.SpareProviders < 0 {
		opts.SpareProviders = 0
	}
	net := rpc.NewInprocNet()
	r := &Repository{net: net, dedupOn: opts.Dedup, opts: opts}
	total := opts.Providers + opts.SpareProviders
	conns := make([]rpc.Conn, total)
	for i := 0; i < total; i++ {
		p, cas, err := r.buildProvider(i, opts.Backend(i))
		if err != nil {
			return nil, err
		}
		if cas != nil {
			r.cas = append(r.cas, cas)
		}
		// Spares get the same epoch-0 table: not being members, they reject
		// writes (and tell stale clients the current table) until a
		// rebalance adds them.
		p.SetPlacement(opts.Providers, opts.Replicas)
		p.SetThrottle(r.throttleLimits())
		srv := rpc.NewServer()
		p.Register(srv)
		addr := fmt.Sprintf("provider-%d", i)
		if err := net.Listen(addr, srv); err != nil {
			return nil, err
		}
		c, err := net.Dial(addr)
		if err != nil {
			return nil, err
		}
		if opts.Faults != nil {
			if cfg := opts.Faults(i); cfg != nil {
				fc := rpc.WithFaults(c, *cfg)
				r.faults = append(r.faults, fc)
				c = fc
			} else {
				r.faults = append(r.faults, nil)
			}
		}
		r.owned = append(r.owned, p)
		conns[i] = c
	}
	if opts.Resilience != nil {
		ro := *opts.Resilience
		if ro.Retryable == nil {
			ro.Retryable = proto.Retryable
		}
		conns = resilient.WrapAll(conns, ro)
	}
	r.conns = conns
	// The explicit table keeps spares out of placement: the client knows
	// total connections but the epoch-0 member list is [0..Providers-1].
	copts := []client.Option{client.WithPlacement(placement.New(opts.Providers, opts.Replicas))}
	if opts.StripeChunkBytes > 0 {
		copts = append(copts, client.WithStripedReads(opts.StripeChunkBytes, opts.StripeParallel))
	}
	if opts.PartialWrites {
		copts = append(copts, client.WithPartialWrites())
	}
	if opts.Dedup {
		copts = append(copts, client.WithDedup(opts.DeltaMaxRatio, opts.DeltaMaxDepth))
	}
	if opts.SegCacheBytes != 0 {
		copts = append(copts, client.WithSegCacheBytes(opts.SegCacheBytes))
	}
	if opts.Tenant != "" {
		copts = append(copts, client.WithTenant(opts.Tenant))
	}
	if opts.HedgedReads {
		copts = append(copts, client.WithHedgedReads(0, opts.HedgeBudget))
	}
	r.cli = client.New(conns, copts...)
	if opts.AutoBalance {
		ctx, cancel := context.WithCancel(context.Background())
		r.balStop = cancel
		go r.AutoBalancer().Run(ctx)
	}
	return r, nil
}

// SweepCold runs one cold-compression sweep over every wrapped provider
// backend, compressing entries idle for at least minIdle. It returns the
// number of entries compressed; a no-op (0, nil) without
// Options.ColdCompress.
func (r *Repository) SweepCold(minIdle time.Duration) (int, error) {
	total := 0
	for _, cas := range r.cas {
		if cas == nil {
			continue
		}
		n, err := cas.SweepCold(minIdle)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// FaultConns exposes the per-provider fault wrappers installed via
// Options.Faults (index = provider ID; nil where no faults were
// configured). Tests and benchmarks use them to flip partitions mid-run.
func (r *Repository) FaultConns() []*rpc.FaultConn { return r.faults }

// throttleLimits assembles the per-tenant admission limits from the Open
// options (the zero value disarms throttling; provider.SetThrottle treats
// it as "unlimited").
func (r *Repository) throttleLimits() frontdoor.Limits {
	return frontdoor.Limits{
		OpsPerSec:   r.opts.ThrottleOpsPerSec,
		BytesPerSec: r.opts.ThrottleBytesPerSec,
		Window:      r.opts.ThrottleWindow,
	}
}

// buildProvider wraps kv per the deployment options (dedup/cold-compress)
// and constructs provider i, durable when Options.DurableCatalog.
func (r *Repository) buildProvider(i int, kv kvstore.KV) (*provider.Provider, *dedup.KV, error) {
	var cas *dedup.KV
	if r.opts.Dedup || r.opts.ColdCompress {
		cas = dedup.Wrap(kv, dedup.Options{ColdCompress: r.opts.ColdCompress})
		kv = cas
	}
	if r.opts.DurableCatalog {
		p, err := provider.NewDurable(i, kv)
		if err != nil {
			return nil, nil, fmt.Errorf("core: provider %d: %w", i, err)
		}
		return p, cas, nil
	}
	return provider.New(i, kv), cas, nil
}

// --- crash / restart -----------------------------------------------------------

// KillProvider simulates kill -9 of embedded provider i: its endpoint is
// unbound from the fabric — in-flight and future calls fail transiently,
// exactly the shape PartialWrites and read failover are built for — and
// the provider object is abandoned WITHOUT flushing, so buffered state
// (e.g. an LSM WAL's bufio tail) is lost as it would be on a real crash.
// The caller keeps ownership of the KV backend and typically reopens it
// for RestartProvider.
func (r *Repository) KillProvider(i int) error {
	if r.owned == nil || i < 0 || i >= len(r.owned) {
		return fmt.Errorf("core: kill provider %d: not an embedded provider", i)
	}
	r.net.Unlisten(fmt.Sprintf("provider-%d", i))
	r.owned[i] = nil
	if r.cas != nil {
		r.cas[i] = nil
	}
	return nil
}

// RestartProvider brings a killed provider back on kv — typically the same
// LSM directory reopened, modeling a process restart on surviving disk
// state. The dedup wrapper (when configured) is rebuilt and its refcounts
// recovered from the store, the provider replays its durable catalog
// (Options.DurableCatalog), placement is re-armed — st, when non-nil,
// installs a saved or fetched placement view on top of the epoch-0 default
// (newest epoch wins) — and the endpoint is rebound so clients reconnect
// on their next call. Converging the data the provider missed while down
// is the Repairer's job, driven by the durable catalog's journals.
func (r *Repository) RestartProvider(i int, kv kvstore.KV, st *placement.State) error {
	if r.owned == nil || i < 0 || i >= len(r.owned) {
		return fmt.Errorf("core: restart provider %d: not an embedded provider", i)
	}
	p, cas, err := r.buildProvider(i, kv)
	if err != nil {
		return fmt.Errorf("core: restart provider %d: %w", i, err)
	}
	if cas != nil {
		if err := cas.Recover(); err != nil {
			return fmt.Errorf("core: restart provider %d: dedup recover: %w", i, err)
		}
	}
	p.SetPlacement(r.opts.Providers, r.opts.Replicas)
	p.SetThrottle(r.throttleLimits())
	if st != nil {
		if err := p.SetPlacementState(st); err != nil {
			return fmt.Errorf("core: restart provider %d: %w", i, err)
		}
	}
	srv := rpc.NewServer()
	p.Register(srv)
	if err := r.net.Listen(fmt.Sprintf("provider-%d", i), srv); err != nil {
		return fmt.Errorf("core: restart provider %d: %w", i, err)
	}
	r.owned[i] = p
	if cas != nil {
		if r.cas == nil {
			r.cas = make([]*dedup.KV, len(r.owned))
		}
		r.cas[i] = cas
	}
	return nil
}

// Attach wraps connections to an externally deployed set of providers
// (e.g. evostore-server processes over TCP). The connection order defines
// provider IDs and must be identical for every client, as must any client
// options (e.g. client.WithReplicas — every client of a deployment must
// agree on the replication factor).
func Attach(conns []rpc.Conn, opts ...client.Option) *Repository {
	return &Repository{cli: client.New(conns, opts...), conns: conns}
}

// Close stops the auto-balance loop (if running) and releases client
// connections (and nothing else: embedded providers hold no external
// resources beyond their KV backends, which the caller owns if it
// supplied them).
func (r *Repository) Close() error {
	if r.balStop != nil {
		r.balStop()
	}
	for _, c := range r.conns {
		c.Close()
	}
	return nil
}

// AutoBalancer returns the deployment's heat-driven rebalancing
// controller, building it on first use from the heat-related Options.
// Drive it manually with Step/Run, or set Options.AutoBalance to have
// Open run it. The controller shares the deployment's client, so its
// epoch bumps serialize with manual Rebalance calls.
func (r *Repository) AutoBalancer() *heat.Controller {
	r.balOnce.Do(func() {
		r.balancer = heat.New(r.cli, heat.Config{
			Interval:          r.opts.AutoBalanceInterval,
			HotFactor:         r.opts.HeatHotFactor,
			ColdFactor:        r.opts.HeatColdFactor,
			WidenTo:           r.opts.HeatWiden,
			PackTo:            r.opts.HeatPack,
			BudgetBytesPerSec: r.opts.MigrationBudgetBytesPerSec,
		}, nil)
	})
	return r.balancer
}

// Heat returns every provider's per-model heat samples (see client.Heat).
func (r *Repository) Heat(ctx context.Context) ([][]proto.ModelHeat, []error) {
	return r.cli.Heat(ctx)
}

// Client exposes the underlying deployment client, for callers that need
// layers the Repository facade does not re-export (heat snapshots, custom
// rebalancing controllers).
func (r *Repository) Client() *client.Client { return r.cli }

// NumProviders returns the deployment size.
func (r *Repository) NumProviders() int { return r.cli.NumProviders() }

// Replicas returns the deployment's replication factor.
func (r *Repository) Replicas() int { return r.cli.Replicas() }

// ReplicaSet returns the provider indices holding id, preferred first.
func (r *Repository) ReplicaSet(id ModelID) []int { return r.cli.ReplicaSet(id) }

// Providers exposes embedded providers for inspection in tests and
// benchmarks; it returns nil for attached deployments.
func (r *Repository) Providers() []*provider.Provider { return r.owned }

// NewModelID allocates a fresh model ID. Sequential IDs spread uniformly
// over providers under the static modulo hash. Attached multi-client
// deployments should partition ID spaces externally (e.g. worker-rank
// prefixes) or accept collisions being rejected at store time.
func (r *Repository) NewModelID() ModelID { return ModelID(r.nextID.Add(1)) }

// nextSeq stamps a store with the repository-global order used by
// provenance.
func (r *Repository) nextSeq() uint64 { return r.seq.Add(1) }

// --- store -----------------------------------------------------------------

// encodeAll consolidates every vertex's tensors.
func encodeAll(ws model.WeightSet) [][]byte {
	segs := make([][]byte, len(ws))
	for v := range ws {
		segs[v] = tensor.EncodeSet(ws[v])
	}
	return segs
}

// Store publishes a from-scratch model (no ancestor): the model owns every
// vertex and all tensors are written. It returns the assigned model ID.
func (r *Repository) Store(ctx context.Context, f *model.Flat, ws model.WeightSet, quality float64) (ModelID, error) {
	id := r.NewModelID()
	seq := r.nextSeq()
	meta := &proto.ModelMeta{
		Model:    id,
		Seq:      seq,
		Quality:  quality,
		Graph:    f.Graph,
		OwnerMap: ownermap.New(id, seq, f.Graph.NumVertices()),
	}
	if err := r.cli.Store(ctx, meta, encodeAll(ws)); err != nil {
		return 0, err
	}
	return id, nil
}

// Ancestor is a resolved transfer-learning source: the best-matching
// stored model and the longest common prefix it shares with the query
// architecture.
type Ancestor struct {
	Meta   *proto.ModelMeta
	Prefix []graph.VertexID

	// prefixFPs records the fingerprints of the transferred tensors at
	// TransferPrefix time, enabling automatic modified-tensor detection in
	// StoreDerived.
	prefixFPs map[graph.VertexID]uint64

	// prefixSegs / prefixDepths keep the transferred segments' logical
	// bytes and stored delta-chain depths (dedup deployments only): a
	// modified prefix vertex can then be stored as a delta against the
	// segment it was fine-tuned from, without refetching it.
	prefixSegs   map[graph.VertexID][]byte
	prefixDepths map[graph.VertexID]uint8
}

// PrefixBytes returns the parameter payload of the shared prefix.
func (a *Ancestor) PrefixBytes(f *model.Flat) int64 {
	return graph.PrefixParamBytes(f.Graph, a.Prefix)
}

// BestAncestor broadcasts an LCP query for the flattened architecture f
// and returns the reduced best match. found is false when the repository
// holds no model sharing any prefix with f.
//
// A winner can be retired concurrently between the query and the metadata
// fetch (retirement removes metadata immediately, paper §4.1); in that
// case the query is retried with the vanished model excluded.
func (r *Repository) BestAncestor(ctx context.Context, f *model.Flat) (*Ancestor, bool, error) {
	return r.BestAncestorExcluding(ctx, f, nil)
}

// BestAncestorRecent is BestAncestor with the continual-learning selection
// rule (paper §6): prefix-length ties are broken by recency — the most
// recently stored model wins — instead of quality, so fine-tuning chains
// follow the freshest knowledge of a drifting data distribution.
func (r *Repository) BestAncestorRecent(ctx context.Context, f *model.Flat) (*Ancestor, bool, error) {
	return r.bestAncestor(ctx, f, nil, true)
}

// BestAncestorExcluding is BestAncestor with an explicit exclusion list
// (used to sidestep models observed mid-retirement).
func (r *Repository) BestAncestorExcluding(ctx context.Context, f *model.Flat, exclude []ownermap.ModelID) (*Ancestor, bool, error) {
	return r.bestAncestor(ctx, f, exclude, false)
}

func (r *Repository) bestAncestor(ctx context.Context, f *model.Flat, exclude []ownermap.ModelID, preferRecent bool) (*Ancestor, bool, error) {
	exclude = append([]ownermap.ModelID(nil), exclude...)
	for attempt := 0; attempt < 8; attempt++ {
		req := &proto.LCPQueryReq{Graph: f.Graph, Exclude: exclude, PreferRecent: preferRecent}
		res, found, err := r.cli.QueryLCPReq(ctx, req)
		if err != nil || !found {
			return nil, false, err
		}
		meta, err := r.cli.GetMeta(ctx, res.Model)
		if err != nil {
			// Most likely retired since the scan; exclude and retry.
			exclude = append(exclude, res.Model)
			continue
		}
		return &Ancestor{Meta: meta, Prefix: res.Prefix}, true, nil
	}
	return nil, false, fmt.Errorf("core: best-ancestor query kept racing retirements (%d attempts)", 8)
}

// TransferPrefix reads the ancestor's tensors for the shared prefix and
// installs them into ws (the transfer-learning "inherit and freeze" step).
// Only the prefix vertices' tensors move over the network; they are
// fetched from their owners' providers in parallel.
func (r *Repository) TransferPrefix(ctx context.Context, f *model.Flat, ws model.WeightSet, anc *Ancestor) error {
	segs, depths, err := r.cli.LoadVerticesInfo(ctx, anc.Meta, anc.Prefix)
	if err != nil {
		return fmt.Errorf("core: transferring prefix from %d: %w", anc.Meta.Model, err)
	}
	anc.prefixFPs = make(map[graph.VertexID]uint64, len(anc.Prefix))
	if r.dedupOn {
		anc.prefixSegs = make(map[graph.VertexID][]byte, len(anc.Prefix))
		anc.prefixDepths = make(map[graph.VertexID]uint8, len(anc.Prefix))
	}
	for _, v := range anc.Prefix {
		if err := ws.DecodeVertexInto(f, v, segs[v]); err != nil {
			return fmt.Errorf("core: installing transferred vertex %d: %w", v, err)
		}
		anc.prefixFPs[v] = vertexFP(ws, v)
		if r.dedupOn {
			anc.prefixSegs[v] = segs[v]
			anc.prefixDepths[v] = depths[v]
		}
	}
	return nil
}

func vertexFP(ws model.WeightSet, v graph.VertexID) uint64 {
	var fp uint64
	for _, t := range ws[v] {
		fp = fp*0x100000001b3 + t.Fingerprint()
	}
	return fp
}

// StoreDerived publishes a model derived from anc. frozen lists the prefix
// vertices whose tensors were NOT modified by training and are therefore
// inherited rather than rewritten. Passing frozen == nil enables automatic
// detection: every prefix vertex whose tensors still fingerprint-match the
// state recorded by TransferPrefix is treated as frozen (the paper's
// fine-grain tensor-level diff). The returned ID identifies the new model.
func (r *Repository) StoreDerived(ctx context.Context, f *model.Flat, ws model.WeightSet,
	quality float64, anc *Ancestor, frozen []graph.VertexID) (ModelID, error) {

	if frozen == nil {
		if anc.prefixFPs == nil {
			return 0, fmt.Errorf("core: automatic diff requires TransferPrefix before StoreDerived")
		}
		for _, v := range anc.Prefix {
			if vertexFP(ws, v) == anc.prefixFPs[v] {
				frozen = append(frozen, v)
			}
		}
	} else {
		inPrefix := make(map[graph.VertexID]bool, len(anc.Prefix))
		for _, v := range anc.Prefix {
			inPrefix[v] = true
		}
		for _, v := range frozen {
			if !inPrefix[v] {
				return 0, fmt.Errorf("core: frozen vertex %d outside the common prefix", v)
			}
		}
	}

	id := r.NewModelID()
	seq := r.nextSeq()
	om, err := ownermap.Derive(anc.Meta.OwnerMap, id, seq, f.Graph.NumVertices(), frozen)
	if err != nil {
		return 0, err
	}
	meta := &proto.ModelMeta{
		Model:    id,
		Seq:      seq,
		Quality:  quality,
		Graph:    f.Graph,
		OwnerMap: om,
	}
	// Only self-owned segments are shipped; inherited slots may stay nil.
	// On a dedup deployment, a modified prefix vertex gets a delta plan:
	// TransferPrefix kept the ancestor segment it was fine-tuned from, so
	// the client can ship an XOR delta against that base instead of the
	// full tensors (the base is named by the *ancestor's* owner of the
	// vertex — the model that physically stores it).
	segs := make([][]byte, f.Graph.NumVertices())
	var plans map[graph.VertexID]client.SegmentPlan
	for v := range segs {
		if om.Entries[v].Owner != id {
			continue
		}
		segs[v] = tensor.EncodeSet(ws[graph.VertexID(v)])
		if base, ok := anc.prefixSegs[graph.VertexID(v)]; ok && r.dedupOn {
			if plans == nil {
				plans = make(map[graph.VertexID]client.SegmentPlan)
			}
			plans[graph.VertexID(v)] = client.SegmentPlan{
				BaseOwner:  anc.Meta.OwnerMap.Entries[v].Owner,
				BaseVertex: graph.VertexID(v),
				Base:       base,
				BaseDepth:  anc.prefixDepths[graph.VertexID(v)],
			}
		}
	}
	if err := r.cli.StoreWithPlans(ctx, meta, segs, plans); err != nil {
		return 0, err
	}
	return id, nil
}

// --- load ------------------------------------------------------------------

// Load reconstructs a model: metadata plus all tensors, decoded per
// vertex. The read path touches one provider for metadata and one bulk
// read per contributing owner, independent of lineage depth.
func (r *Repository) Load(ctx context.Context, id ModelID) (*proto.ModelMeta, model.WeightSet, error) {
	data, err := r.cli.Load(ctx, id)
	if err != nil {
		return nil, nil, err
	}
	ws := make(model.WeightSet, len(data.Segments))
	for v, seg := range data.Segments {
		ts, err := tensor.DecodeSet(seg)
		if err != nil {
			return nil, nil, fmt.Errorf("core: load %d: vertex %d: %w", id, v, err)
		}
		for i, t := range ts {
			ts[i] = t.Clone() // detach from the transport buffer
		}
		ws[v] = ts
	}
	return data.Meta, ws, nil
}

// GetMeta fetches a model's metadata only.
func (r *Repository) GetMeta(ctx context.Context, id ModelID) (*proto.ModelMeta, error) {
	return r.cli.GetMeta(ctx, id)
}

// LoadVertices reads only the given vertices' consolidated tensor
// segments, fetched from their owners' providers in parallel (the raw
// partial-read primitive; TransferPrefix is the higher-level form).
func (r *Repository) LoadVertices(ctx context.Context, meta *proto.ModelMeta, vs []graph.VertexID) ([][]byte, error) {
	return r.cli.LoadVertices(ctx, meta, vs)
}

// --- retire / GC --------------------------------------------------------------

// Retire removes a model from the repository. Its metadata disappears
// immediately; its owned tensors are freed when no live model references
// them (distributed reference counting). Returns the number of tensor
// segments freed now.
func (r *Repository) Retire(ctx context.Context, id ModelID) (uint64, error) {
	return r.cli.Retire(ctx, id)
}

// --- replica repair -----------------------------------------------------------

// Repairer returns the deployment's anti-entropy repairer, created on
// first use. Run it periodically (Repairer().Run), sweep once after an
// outage (RepairAll), or audit without repairing (RepairCheck).
func (r *Repository) Repairer() *client.Repairer {
	r.repOnce.Do(func() { r.repairer = client.NewRepairer(r.cli) })
	return r.repairer
}

// RepairAll sweeps every replicated model once, converging any replica
// sets that partial writes (or an outage) left diverged.
func (r *Repository) RepairAll(ctx context.Context) (client.RepairStats, error) {
	return r.Repairer().RepairAll(ctx)
}

// RepairCheck reports the models whose replica sets have diverged,
// without repairing anything.
func (r *Repository) RepairCheck(ctx context.Context) ([]ModelID, error) {
	return r.Repairer().Check(ctx)
}

// DrainRepairTargets returns and clears the models queued by accepted
// partial writes (see Options.PartialWrites).
func (r *Repository) DrainRepairTargets() []client.RepairTarget {
	return r.cli.DrainRepairTargets()
}

// --- elastic placement ---------------------------------------------------------

// Rebalancer returns the deployment's migration driver, created on first
// use.
func (r *Repository) Rebalancer() *client.Rebalancer {
	r.rebOnce.Do(func() { r.rebalancer = client.NewRebalancer(r.cli) })
	return r.rebalancer
}

// PlacementTable returns the current-epoch placement table.
func (r *Repository) PlacementTable() *placement.Table {
	return r.cli.PlacementTable()
}

// Rebalance migrates the deployment to the given member list (an epoch
// bump; same replication factor): data moves to the new replica sets
// while reads and writes keep succeeding, then departed providers are
// drained of every model they held.
func (r *Repository) Rebalance(ctx context.Context, members []int) (*client.RebalanceStats, error) {
	next, err := r.cli.PlacementTable().Next(members)
	if err != nil {
		return nil, fmt.Errorf("core: rebalance: %w", err)
	}
	return r.Rebalancer().Rebalance(ctx, next)
}

// --- provenance ------------------------------------------------------------------

// Lineage returns the chain of ancestors that contributed tensors to the
// model, oldest first, ending with the model itself.
func (r *Repository) Lineage(ctx context.Context, id ModelID) ([]ModelID, error) {
	return r.cli.Lineage(ctx, id)
}

// CommonAncestor returns the most recent common contributing ancestor of
// a and b.
func (r *Repository) CommonAncestor(ctx context.Context, a, b ModelID) (ModelID, bool, error) {
	return r.cli.CommonAncestor(ctx, a, b)
}

// OwnerOf answers "which ancestor owns this frozen layer": the most recent
// ancestor that modified vertex v of model id.
func (r *Repository) OwnerOf(ctx context.Context, id ModelID, v graph.VertexID) (ModelID, error) {
	meta, err := r.cli.GetMeta(ctx, id)
	if err != nil {
		return 0, err
	}
	e, err := meta.OwnerMap.OwnerOf(v)
	if err != nil {
		return 0, err
	}
	return e.Owner, nil
}

// --- listing & stats ----------------------------------------------------------------

// ListModels returns every model ID cataloged across providers.
func (r *Repository) ListModels(ctx context.Context) ([]ModelID, error) {
	return r.cli.ListModels(ctx)
}

// Stats aggregates storage statistics across providers. SegmentBytes is
// the deduplicated tensor payload actually stored — the quantity Figure 10
// compares against full-copy baselines.
func (r *Repository) Stats(ctx context.Context) (*proto.ProviderStats, error) {
	return r.cli.Stats(ctx)
}
