package core

import (
	"context"
	"testing"

	"repro/internal/model"
)

func openDedupRepo(t testing.TB, opts Options) *Repository {
	t.Helper()
	r, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// nudge flips a few bytes in every tensor of up to n parameter vertices —
// the small-training-step shape the delta encoder targets — and returns
// how many vertices changed.
func nudge(ws model.WeightSet, n int) int {
	changed := 0
	for v := range ws {
		if len(ws[v]) == 0 || changed == n {
			continue
		}
		for _, tns := range ws[v] {
			if len(tns.Data) >= 16 {
				tns.Data[0] ^= 0x7f
				tns.Data[8] ^= 0x33
			}
		}
		changed++
	}
	return changed
}

// derive fine-tunes the latest stored model of architecture f: transfer
// the prefix, nudge touch vertices, store derived with automatic diff.
func derive(t *testing.T, repo *Repository, f *model.Flat, touch int) (ModelID, model.WeightSet) {
	t.Helper()
	ctx := context.Background()
	anc, found, err := repo.BestAncestorRecent(ctx, f)
	if err != nil || !found {
		t.Fatalf("BestAncestorRecent: found=%v err=%v", found, err)
	}
	ws := model.Materialize(f, 0) // placeholder; the prefix overwrites it
	if err := repo.TransferPrefix(ctx, f, ws, anc); err != nil {
		t.Fatal(err)
	}
	if got := nudge(ws, touch); got != touch {
		t.Fatalf("nudged %d vertices, want %d", got, touch)
	}
	id, err := repo.StoreDerived(ctx, f, ws, 0.9, anc, nil)
	if err != nil {
		t.Fatal(err)
	}
	return id, ws.Clone()
}

// A dedup deployment must be invisible to readers: a derived model whose
// modified tensors shipped as deltas loads back bit-identical, and the
// delta actually saved bytes versus storing the lineage raw.
func TestDedupDerivedLoadRoundtrip(t *testing.T) {
	ctx := context.Background()
	f := mlp(t, 4, 32, 16)
	base := model.Materialize(f, 1)

	run := func(t *testing.T, opts Options) uint64 {
		repo := openDedupRepo(t, opts)
		baseID, err := repo.Store(ctx, f, base.Clone(), 0.8)
		if err != nil {
			t.Fatal(err)
		}
		childID, want := derive(t, repo, f, 2)
		for id, wantWS := range map[ModelID]model.WeightSet{baseID: base, childID: want} {
			_, got, err := repo.Load(ctx, id)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Equal(wantWS) {
				t.Fatalf("model %d restored with wrong weights", id)
			}
		}
		st, err := repo.Stats(ctx)
		if err != nil {
			t.Fatal(err)
		}
		return st.SegmentBytes
	}
	rawBytes := run(t, Options{Providers: 3})
	dedupBytes := run(t, Options{Providers: 3, Dedup: true})
	if dedupBytes >= rawBytes {
		t.Fatalf("dedup stored %d bytes, raw %d — the deltas saved nothing", dedupBytes, rawBytes)
	}
}

// Retiring an ancestor before its delta children must not strand the
// chain: the children's pins keep the base segments alive, and retiring
// the last child cascades the release so everything is freed.
func TestDedupRetireAncestorFirst(t *testing.T) {
	ctx := context.Background()
	repo := openDedupRepo(t, Options{Providers: 3, Dedup: true})
	f := mlp(t, 4, 32, 16)
	base := model.Materialize(f, 1)
	baseID, err := repo.Store(ctx, f, base.Clone(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	childID, want := derive(t, repo, f, 2)

	if _, err := repo.Retire(ctx, baseID); err != nil {
		t.Fatal(err)
	}
	// The child's delta bases (and inherited tensors) are pinned: still
	// loadable, bit-identical.
	_, got, err := repo.Load(ctx, childID)
	if err != nil {
		t.Fatalf("child unloadable after ancestor retire: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("child restored with wrong weights after ancestor retire")
	}
	st, err := repo.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentBytes == 0 {
		t.Fatal("pinned ancestor segments were freed early")
	}
	// Retiring the child cascades: its freed deltas release their bases,
	// draining the stores completely.
	if _, err := repo.Retire(ctx, childID); err != nil {
		t.Fatal(err)
	}
	if st, err = repo.Stats(ctx); err != nil {
		t.Fatal(err)
	}
	if st.SegmentBytes != 0 {
		t.Fatalf("%d segment bytes stranded after retiring the whole lineage", st.SegmentBytes)
	}
}

// A lineage deeper than DeltaMaxDepth forces store-time rebases to raw;
// every generation must still restore bit-identical.
func TestDedupChainDepthRebase(t *testing.T) {
	ctx := context.Background()
	repo := openDedupRepo(t, Options{Providers: 2, Dedup: true, DeltaMaxDepth: 2})
	f := mlp(t, 4, 32, 16)
	base := model.Materialize(f, 1)
	baseID, err := repo.Store(ctx, f, base.Clone(), 0.8)
	if err != nil {
		t.Fatal(err)
	}
	want := map[ModelID]model.WeightSet{baseID: base}
	for step := 0; step < 5; step++ {
		// Touch every parameter vertex so each generation chains on the
		// last and the depth bound actually engages.
		id, ws := derive(t, repo, f, 4)
		want[id] = ws
	}
	for id, wantWS := range want {
		_, got, err := repo.Load(ctx, id)
		if err != nil {
			t.Fatalf("load %d: %v", id, err)
		}
		if !got.Equal(wantWS) {
			t.Fatalf("model %d restored with wrong weights", id)
		}
	}
}
