package core

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/kvstore"
	"repro/internal/model"
	"repro/internal/provider"
	"repro/internal/rpc"
)

func openRepo(t testing.TB, providers int) *Repository {
	t.Helper()
	r, err := Open(Options{Providers: providers})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	return r
}

// mlp builds a sequential model whose last layer width is a parameter, so
// related candidates share a long prefix.
func mlp(t testing.TB, depth, width, lastWidth int) *model.Flat {
	t.Helper()
	layers := make([]model.Layer, 0, depth)
	in := width
	for i := 0; i < depth-1; i++ {
		layers = append(layers, model.Dense{In: in, Out: width, Activation: "relu", UseBias: true})
		in = width
	}
	layers = append(layers, model.Dense{In: in, Out: lastWidth, Activation: "softmax", UseBias: true})
	f, err := model.Flatten(model.Sequential("mlp", width, layers...))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestStoreLoadRoundtrip(t *testing.T) {
	repo := openRepo(t, 3)
	ctx := context.Background()
	f := mlp(t, 4, 16, 8)
	ws := model.Materialize(f, 42)

	id, err := repo.Store(ctx, f, ws, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	meta, got, err := repo.Load(ctx, id)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Model != id || meta.Quality != 0.9 {
		t.Errorf("meta = %+v", meta)
	}
	if !f.Graph.Equal(meta.Graph) {
		t.Error("architecture lost in roundtrip")
	}
	if !ws.Equal(got) {
		t.Error("weights mismatch after load")
	}
	// From-scratch model owns everything.
	if lin := meta.OwnerMap.Lineage(); len(lin) != 1 || lin[0] != id {
		t.Errorf("lineage = %v", lin)
	}
}

func TestBestAncestorOnEmptyRepo(t *testing.T) {
	repo := openRepo(t, 2)
	f := mlp(t, 3, 8, 4)
	_, found, err := repo.BestAncestor(context.Background(), f)
	if err != nil {
		t.Fatal(err)
	}
	if found {
		t.Error("found ancestor in empty repository")
	}
}

func TestDeriveTransferAndLoad(t *testing.T) {
	repo := openRepo(t, 4)
	ctx := context.Background()

	// Root model.
	fRoot := mlp(t, 5, 16, 8)
	wsRoot := model.Materialize(fRoot, 1)
	rootID, err := repo.Store(ctx, fRoot, wsRoot, 0.7)
	if err != nil {
		t.Fatal(err)
	}

	// Derived candidate: same prefix, different last layer.
	fChild := mlp(t, 5, 16, 12)
	anc, found, err := repo.BestAncestor(ctx, fChild)
	if err != nil || !found {
		t.Fatalf("BestAncestor: found=%v err=%v", found, err)
	}
	if anc.Meta.Model != rootID {
		t.Fatalf("ancestor = %d, want %d", anc.Meta.Model, rootID)
	}
	// Prefix: input + 4 hidden dense layers (the last differs) = 5 vertices.
	if len(anc.Prefix) != 5 {
		t.Fatalf("prefix = %v", anc.Prefix)
	}

	wsChild := model.Materialize(fChild, 2)
	if err := repo.TransferPrefix(ctx, fChild, wsChild, anc); err != nil {
		t.Fatal(err)
	}
	// Transferred vertices must now equal the root's weights.
	for _, v := range anc.Prefix {
		if !wsChild.VertexEqual(wsRoot, v) {
			t.Errorf("vertex %d not transferred", v)
		}
	}

	// "Train" only the non-frozen tail.
	last := graph.VertexID(fChild.Graph.NumVertices() - 1)
	wsChild.PerturbVertex(last, 99)

	childID, err := repo.StoreDerived(ctx, fChild, wsChild, 0.8, anc, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The child's owner map must attribute the prefix to the root.
	meta, got, err := repo.Load(ctx, childID)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range anc.Prefix {
		e, _ := meta.OwnerMap.OwnerOf(v)
		if e.Owner != rootID {
			t.Errorf("vertex %d owner = %d, want root %d", v, e.Owner, rootID)
		}
	}
	if !got.Equal(wsChild) {
		t.Error("derived model weights mismatch after load")
	}
	if lin, _ := repo.Lineage(ctx, childID); len(lin) != 2 || lin[0] != rootID || lin[1] != childID {
		t.Errorf("lineage = %v", lin)
	}
}

func TestAutoDiffDetectsTrainedVertices(t *testing.T) {
	repo := openRepo(t, 2)
	ctx := context.Background()
	f := mlp(t, 4, 8, 4)
	rootID, err := repo.Store(ctx, f, model.Materialize(f, 1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_ = rootID

	// Identical architecture: whole graph is the prefix.
	anc, found, err := repo.BestAncestor(ctx, f)
	if err != nil || !found {
		t.Fatal("ancestor not found")
	}
	if len(anc.Prefix) != f.Graph.NumVertices() {
		t.Fatalf("prefix = %d vertices, want all %d", len(anc.Prefix), f.Graph.NumVertices())
	}
	ws := model.Materialize(f, 2)
	if err := repo.TransferPrefix(ctx, f, ws, anc); err != nil {
		t.Fatal(err)
	}
	// Train vertices 2 and 3 only.
	ws.PerturbVertex(2, 7)
	ws.PerturbVertex(3, 8)
	childID, err := repo.StoreDerived(ctx, f, ws, 0.6, anc, nil)
	if err != nil {
		t.Fatal(err)
	}
	meta, err := repo.GetMeta(ctx, childID)
	if err != nil {
		t.Fatal(err)
	}
	// Vertices 0,1 inherited; 2,3 owned by the child.
	for v := 0; v < meta.OwnerMap.Len(); v++ {
		e, _ := meta.OwnerMap.OwnerOf(graph.VertexID(v))
		wantChild := v == 2 || v == 3
		if (e.Owner == childID) != wantChild {
			t.Errorf("vertex %d owner = %d (child=%d)", v, e.Owner, childID)
		}
	}
}

func TestStoreDerivedRejectsFrozenOutsidePrefix(t *testing.T) {
	repo := openRepo(t, 2)
	ctx := context.Background()
	f := mlp(t, 4, 8, 4)
	if _, err := repo.Store(ctx, f, model.Materialize(f, 1), 0.5); err != nil {
		t.Fatal(err)
	}
	f2 := mlp(t, 4, 8, 6)
	anc, _, err := repo.BestAncestor(ctx, f2)
	if err != nil {
		t.Fatal(err)
	}
	ws := model.Materialize(f2, 2)
	last := graph.VertexID(f2.Graph.NumVertices() - 1) // differs → outside prefix
	if _, err := repo.StoreDerived(ctx, f2, ws, 0.1, anc, []graph.VertexID{last}); err == nil {
		t.Error("accepted frozen vertex outside the prefix")
	}
}

// TestFigure2EndToEnd walks the grandparent→parent→child chain of Figure 2
// through the whole stack and checks dedup accounting: 13 unique stored
// layers instead of 21.
func TestFigure2EndToEnd(t *testing.T) {
	repo := openRepo(t, 4)
	ctx := context.Background()

	gpF := mlp(t, 7, 8, 4) // 8 vertices: input + 7 dense
	gpWS := model.Materialize(gpF, 1)
	gpID, err := repo.Store(ctx, gpF, gpWS, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	derive := func(f *model.Flat, seed uint64, q float64, train []graph.VertexID) (ModelID, *Ancestor) {
		anc, found, err := repo.BestAncestor(ctx, f)
		if err != nil || !found {
			t.Fatalf("ancestor: %v found=%v", err, found)
		}
		ws := model.Materialize(f, seed)
		if err := repo.TransferPrefix(ctx, f, ws, anc); err != nil {
			t.Fatal(err)
		}
		for _, v := range train {
			ws.PerturbVertex(v, seed)
		}
		id, err := repo.StoreDerived(ctx, f, ws, q, anc, nil)
		if err != nil {
			t.Fatal(err)
		}
		return id, anc
	}

	// Parent: differs from grandparent in the 4th dense layer onward.
	parF := mlp(t, 7, 8, 4)
	// Mutate: rebuild with a different mid layer by perturbing after transfer:
	// simpler: parent same arch, trains last 4 vertices.
	parID, parAnc := derive(parF, 2, 0.6, []graph.VertexID{4, 5, 6, 7})
	if parAnc.Meta.Model != gpID {
		t.Fatalf("parent's ancestor = %d", parAnc.Meta.Model)
	}

	// Child derives from parent (higher quality wins ties): trains last 2.
	childF := mlp(t, 7, 8, 4)
	childID, childAnc := derive(childF, 3, 0.7, []graph.VertexID{6, 7})
	if childAnc.Meta.Model != parID {
		t.Fatalf("child's ancestor = %d, want parent %d", childAnc.Meta.Model, parID)
	}

	// Owner map of child: {0..3} grandparent, {4,5} parent, {6,7} child.
	meta, err := repo.GetMeta(ctx, childID)
	if err != nil {
		t.Fatal(err)
	}
	for v, want := range []ModelID{gpID, gpID, gpID, gpID, parID, parID, childID, childID} {
		e, _ := meta.OwnerMap.OwnerOf(graph.VertexID(v))
		if e.Owner != want {
			t.Errorf("child vertex %d owner = %d, want %d", v, e.Owner, want)
		}
	}

	// Storage: 8 (gp) + 4 (parent) + 2 (child) = 14 segments, not 24.
	st, err := repo.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 14 {
		t.Errorf("segments = %d, want 14", st.Segments)
	}
	if st.Models != 3 {
		t.Errorf("models = %d", st.Models)
	}

	// Provenance: MRCA of parent and child is the grandparent? No —
	// child inherits parent-owned vertices, so MRCA(parent,child)=parent.
	mrca, ok, err := repo.CommonAncestor(ctx, parID, childID)
	if err != nil || !ok || mrca != parID {
		t.Errorf("MRCA = %d ok=%v err=%v, want %d", mrca, ok, err, parID)
	}
	// OwnerOf: vertex 4 of the child belongs to the parent.
	owner, err := repo.OwnerOf(ctx, childID, 4)
	if err != nil || owner != parID {
		t.Errorf("OwnerOf(child, 4) = %d, want %d", owner, parID)
	}
}

func TestRetireKeepsSharedTensorsAlive(t *testing.T) {
	repo := openRepo(t, 4)
	ctx := context.Background()

	f := mlp(t, 4, 8, 4)
	rootID, err := repo.Store(ctx, f, model.Materialize(f, 1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	anc, _, err := repo.BestAncestor(ctx, f)
	if err != nil {
		t.Fatal(err)
	}
	ws := model.Materialize(f, 2)
	if err := repo.TransferPrefix(ctx, f, ws, anc); err != nil {
		t.Fatal(err)
	}
	last := graph.VertexID(f.Graph.NumVertices() - 1)
	ws.PerturbVertex(last, 9)
	childID, err := repo.StoreDerived(ctx, f, ws, 0.6, anc, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Retire the root: only its unshared tensors may be freed; everything
	// the child inherits must survive. The child perturbed exactly the last
	// vertex, so the root's copy of that vertex is unshared — one segment
	// may (and must) be freed, no more.
	freedRoot, err := repo.Retire(ctx, rootID)
	if err != nil {
		t.Fatal(err)
	}
	if freedRoot != 1 {
		t.Errorf("retiring root freed %d segments, want exactly the 1 unshared one", freedRoot)
	}
	// The root's metadata is gone...
	if _, err := repo.GetMeta(ctx, rootID); err == nil {
		t.Error("retired model still has metadata")
	}
	// ...but the child still loads completely.
	_, got, err := repo.Load(ctx, childID)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(ws) {
		t.Error("child corrupted by root retirement")
	}

	// Retiring the child frees everything (root segments reach zero too).
	freedChild, err := repo.Retire(ctx, childID)
	if err != nil {
		t.Fatal(err)
	}
	wantFreed := uint64(f.Graph.NumVertices() + 1) // root's n-1 shared + own tensors... compute below
	_ = wantFreed
	st, err := repo.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 0 || st.SegmentBytes != 0 || st.Models != 0 {
		t.Errorf("repository not empty after all retirements: %+v (freedChild=%d)", st, freedChild)
	}
}

func TestRetireTwiceFails(t *testing.T) {
	repo := openRepo(t, 2)
	ctx := context.Background()
	f := mlp(t, 3, 8, 4)
	id, err := repo.Store(ctx, f, model.Materialize(f, 1), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Retire(ctx, id); err != nil {
		t.Fatal(err)
	}
	if _, err := repo.Retire(ctx, id); err == nil {
		t.Error("double retire succeeded")
	}
}

func TestLoadUnknownModelFails(t *testing.T) {
	repo := openRepo(t, 2)
	if _, _, err := repo.Load(context.Background(), 12345); err == nil {
		t.Error("loading unknown model succeeded")
	}
}

func TestQualityTieBreakInLCP(t *testing.T) {
	repo := openRepo(t, 3)
	ctx := context.Background()
	f := mlp(t, 4, 8, 4)
	// Two identical-architecture models with different quality.
	if _, err := repo.Store(ctx, f, model.Materialize(f, 1), 0.3); err != nil {
		t.Fatal(err)
	}
	id2, err := repo.Store(ctx, f, model.Materialize(f, 2), 0.9)
	if err != nil {
		t.Fatal(err)
	}
	anc, found, err := repo.BestAncestor(ctx, f)
	if err != nil || !found {
		t.Fatal(err)
	}
	if anc.Meta.Model != id2 {
		t.Errorf("best ancestor = %d (q=%v), want higher-quality %d", anc.Meta.Model, anc.Meta.Quality, id2)
	}
}

func TestConcurrentWorkers(t *testing.T) {
	repo := openRepo(t, 4)
	ctx := context.Background()

	// Seed a root per worker-family.
	fRoot := mlp(t, 5, 16, 8)
	if _, err := repo.Store(ctx, fRoot, model.Materialize(fRoot, 0), 0.5); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const rounds = 5
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < rounds; i++ {
				f := mlp(t, 5, 16, 8+r.Intn(8))
				ws := model.Materialize(f, uint64(w*1000+i))
				anc, found, err := repo.BestAncestor(ctx, f)
				if err != nil {
					errCh <- fmt.Errorf("w%d: query: %w", w, err)
					return
				}
				var id ModelID
				if found {
					if err := repo.TransferPrefix(ctx, f, ws, anc); err != nil {
						errCh <- fmt.Errorf("w%d: transfer: %w", w, err)
						return
					}
					last := graph.VertexID(f.Graph.NumVertices() - 1)
					ws.PerturbVertex(last, uint64(i))
					id, err = repo.StoreDerived(ctx, f, ws, r.Float64(), anc, nil)
				} else {
					id, err = repo.Store(ctx, f, ws, r.Float64())
				}
				if err != nil {
					errCh <- fmt.Errorf("w%d: store: %w", w, err)
					return
				}
				// Loading what we stored must round-trip.
				if _, got, err := repo.Load(ctx, id); err != nil || !got.Equal(ws) {
					errCh <- fmt.Errorf("w%d: load mismatch (err=%v)", w, err)
					return
				}
			}
			errCh <- nil
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestGCInvariantRandomLineage drives a random store/derive/retire workload
// and checks the central GC invariant at the end: after retiring every
// model, no segments (and no bytes) remain anywhere.
func TestGCInvariantRandomLineage(t *testing.T) {
	repo := openRepo(t, 5)
	ctx := context.Background()
	r := rand.New(rand.NewSource(7))

	live := make(map[ModelID]model.WeightSet)
	var liveIDs []ModelID

	for step := 0; step < 60; step++ {
		switch {
		case len(liveIDs) == 0 || r.Intn(4) == 0: // new root
			f := mlp(t, 3+r.Intn(4), 8, 4+r.Intn(8))
			ws := model.Materialize(f, r.Uint64())
			id, err := repo.Store(ctx, f, ws, r.Float64())
			if err != nil {
				t.Fatal(err)
			}
			live[id] = ws
			liveIDs = append(liveIDs, id)
		case r.Intn(3) == 0 && len(liveIDs) > 0: // retire random live model
			i := r.Intn(len(liveIDs))
			id := liveIDs[i]
			if _, err := repo.Retire(ctx, id); err != nil {
				t.Fatal(err)
			}
			delete(live, id)
			liveIDs = append(liveIDs[:i], liveIDs[i+1:]...)
		default: // derive from whatever LCP finds
			f := mlp(t, 3+r.Intn(4), 8, 4+r.Intn(8))
			ws := model.Materialize(f, r.Uint64())
			anc, found, err := repo.BestAncestor(ctx, f)
			if err != nil {
				t.Fatal(err)
			}
			var id ModelID
			if found {
				if err := repo.TransferPrefix(ctx, f, ws, anc); err != nil {
					t.Fatal(err)
				}
				ws.PerturbVertex(graph.VertexID(f.Graph.NumVertices()-1), r.Uint64())
				id, err = repo.StoreDerived(ctx, f, ws, r.Float64(), anc, nil)
			} else {
				id, err = repo.Store(ctx, f, ws, r.Float64())
			}
			if err != nil {
				t.Fatal(err)
			}
			live[id] = ws
			liveIDs = append(liveIDs, id)
		}

		// Every live model must load byte-identically at every step.
		if step%10 == 9 {
			for id, want := range live {
				_, got, err := repo.Load(ctx, id)
				if err != nil {
					t.Fatalf("step %d: load %d: %v", step, id, err)
				}
				if !got.Equal(want) {
					t.Fatalf("step %d: model %d corrupted", step, id)
				}
			}
		}
	}

	// Drain: retire everything; the repository must end empty.
	for _, id := range liveIDs {
		if _, err := repo.Retire(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	st, err := repo.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Models != 0 || st.Segments != 0 || st.SegmentBytes != 0 || st.LiveRefs != 0 {
		t.Errorf("leak after full drain: %+v", st)
	}
}

func TestLSMBackedRepository(t *testing.T) {
	dir := t.TempDir()
	repo, err := Open(Options{
		Providers: 2,
		Backend: func(i int) kvstore.KV {
			kv, err := kvstore.OpenLSM(fmt.Sprintf("%s/p%d", dir, i), kvstore.LSMOptions{})
			if err != nil {
				t.Fatal(err)
			}
			return kv
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	ctx := context.Background()
	f := mlp(t, 4, 16, 8)
	ws := model.Materialize(f, 3)
	id, err := repo.Store(ctx, f, ws, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := repo.Load(ctx, id)
	if err != nil || !got.Equal(ws) {
		t.Errorf("LSM-backed roundtrip failed: %v", err)
	}
}

func TestBestAncestorRecentPrefersNewest(t *testing.T) {
	repo := openRepo(t, 3)
	ctx := context.Background()
	f := mlp(t, 4, 8, 4)
	// Older model has higher quality; recency selection must still pick
	// the newer one on an LCP tie (quality selection picks the older).
	oldID, err := repo.Store(ctx, f, model.Materialize(f, 1), 0.99)
	if err != nil {
		t.Fatal(err)
	}
	newID, err := repo.Store(ctx, f, model.Materialize(f, 2), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	byQuality, found, err := repo.BestAncestor(ctx, f)
	if err != nil || !found || byQuality.Meta.Model != oldID {
		t.Errorf("quality selection picked %v (found=%v err=%v), want %d",
			byQuality.Meta.Model, found, err, oldID)
	}
	byRecency, found, err := repo.BestAncestorRecent(ctx, f)
	if err != nil || !found || byRecency.Meta.Model != newID {
		t.Errorf("recency selection picked %v (found=%v err=%v), want %d",
			byRecency.Meta.Model, found, err, newID)
	}
	// A longer prefix still dominates recency: store an older model with a
	// longer matching architecture and query with that architecture.
	f2 := mlp(t, 6, 8, 4)
	longID, err := repo.Store(ctx, f2, model.Materialize(f2, 3), 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Newer short model:
	if _, err := repo.Store(ctx, f, model.Materialize(f, 4), 0.5); err != nil {
		t.Fatal(err)
	}
	res, found, err := repo.BestAncestorRecent(ctx, f2)
	if err != nil || !found || res.Meta.Model != longID {
		t.Errorf("recency beat prefix length: picked %v, want %d", res.Meta.Model, longID)
	}
}

// TestConcurrentDeriveVsRetire races workers deriving from the catalog
// against a reaper retiring models. The repository must never corrupt a
// stored model: every successfully stored model loads byte-identically,
// and the final drain leaves zero segments.
func TestConcurrentDeriveVsRetire(t *testing.T) {
	repo := openRepo(t, 4)
	ctx := context.Background()
	f := mlp(t, 5, 8, 4)

	// Seed some roots.
	var mu sync.Mutex
	live := make(map[ModelID]model.WeightSet)
	for i := 0; i < 4; i++ {
		ws := model.Materialize(f, uint64(i))
		id, err := repo.Store(ctx, f, ws, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		live[id] = ws
	}

	var derivers, reaper sync.WaitGroup
	errCh := make(chan error, 12)
	stop := make(chan struct{})

	// Derivers.
	for w := 0; w < 6; w++ {
		derivers.Add(1)
		go func(w int) {
			defer derivers.Done()
			for i := 0; i < 25; i++ {
				var exclude []ModelID
				ok := false
				for attempt := 0; attempt < 8 && !ok; attempt++ {
					ws := model.Materialize(f, uint64(w*1000+i))
					anc, found, err := repo.BestAncestorExcluding(ctx, f, exclude)
					if err != nil {
						errCh <- err
						return
					}
					if !found {
						id, err := repo.Store(ctx, f, ws, 0.5)
						if err != nil {
							errCh <- err
							return
						}
						mu.Lock()
						live[id] = ws
						mu.Unlock()
						break
					}
					if err := repo.TransferPrefix(ctx, f, ws, anc); err != nil {
						exclude = append(exclude, anc.Meta.Model)
						continue // raced a retirement; retry
					}
					ws.PerturbVertex(graph.VertexID(f.Graph.NumVertices()-1), uint64(i))
					id, err := repo.StoreDerived(ctx, f, ws, 0.5, anc, nil)
					if err != nil {
						exclude = append(exclude, anc.Meta.Model)
						continue
					}
					mu.Lock()
					live[id] = ws
					mu.Unlock()
					ok = true
				}
			}
		}(w)
	}

	// Reaper: retires random live models while derivers run.
	reaper.Add(1)
	go func() {
		defer reaper.Done()
		r := rand.New(rand.NewSource(99))
		for {
			select {
			case <-stop:
				return
			default:
			}
			mu.Lock()
			var ids []ModelID
			for id := range live {
				ids = append(ids, id)
			}
			if len(ids) > 3 {
				victim := ids[r.Intn(len(ids))]
				delete(live, victim)
				mu.Unlock()
				if _, err := repo.Retire(ctx, victim); err != nil {
					errCh <- fmt.Errorf("retire %d: %w", victim, err)
					return
				}
				continue
			}
			mu.Unlock()
		}
	}()

	// Let the reaper race the derivers for their whole run, then stop it.
	derivers.Wait()
	close(stop)
	reaper.Wait()
	close(errCh)
	for err := range errCh {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Every live model must load byte-identically.
	mu.Lock()
	defer mu.Unlock()
	for id, want := range live {
		_, got, err := repo.Load(ctx, id)
		if err != nil {
			t.Fatalf("load %d: %v", id, err)
		}
		if !got.Equal(want) {
			t.Fatalf("model %d corrupted under concurrency", id)
		}
	}
	// Drain and verify no leaks.
	for id := range live {
		if _, err := repo.Retire(ctx, id); err != nil {
			t.Fatal(err)
		}
	}
	st, err := repo.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 0 || st.LiveRefs != 0 {
		t.Errorf("leak after drain: %+v", st)
	}
}

// TestAttachOverTCP drives the full transfer-learning loop against
// providers on real TCP listeners — the cmd/evostore-server deployment
// shape.
func TestAttachOverTCP(t *testing.T) {
	const providers = 3
	conns := make([]rpc.Conn, providers)
	for i := 0; i < providers; i++ {
		p := provider.New(i, kvstore.NewMemKV(8))
		srv := rpc.NewServer()
		p.Register(srv)
		lis, addr, err := rpc.ListenAndServeTCP("127.0.0.1:0", srv)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { lis.Close() })
		pool := rpc.NewPool(addr, 4, rpc.DialTCP)
		t.Cleanup(func() { pool.Close() })
		conns[i] = pool
	}
	repo := Attach(conns)
	ctx := context.Background()

	f := mlp(t, 5, 16, 8)
	ws := model.Materialize(f, 1)
	rootID, err := repo.Store(ctx, f, ws, 0.7)
	if err != nil {
		t.Fatal(err)
	}
	f2 := mlp(t, 5, 16, 12)
	anc, found, err := repo.BestAncestor(ctx, f2)
	if err != nil || !found || anc.Meta.Model != rootID {
		t.Fatalf("ancestor over TCP: %v found=%v", err, found)
	}
	ws2 := model.Materialize(f2, 2)
	if err := repo.TransferPrefix(ctx, f2, ws2, anc); err != nil {
		t.Fatal(err)
	}
	ws2.PerturbVertex(graph.VertexID(f2.Graph.NumVertices()-1), 9)
	childID, err := repo.StoreDerived(ctx, f2, ws2, 0.8, anc, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, got, err := repo.Load(ctx, childID)
	if err != nil || !got.Equal(ws2) {
		t.Fatalf("TCP roundtrip failed: %v", err)
	}
	if lin, _ := repo.Lineage(ctx, childID); len(lin) != 2 {
		t.Errorf("lineage over TCP = %v", lin)
	}
	if _, err := repo.Retire(ctx, rootID); err != nil {
		t.Fatal(err)
	}
	if _, got, err := repo.Load(ctx, childID); err != nil || !got.Equal(ws2) {
		t.Fatalf("child lost after TCP retirement: %v", err)
	}
}
