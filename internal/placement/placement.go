package placement

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ownermap"
	"repro/internal/wire"
)

// Table is one epoch's placement view: an ordered member list and the
// replication factor applied over it. Members are provider indices into
// the deployment's canonical address list — membership can shrink or grow,
// the address list only grows.
//
// Overrides carries per-model replica counts for models whose heat
// justifies deviating from the base factor: the heat-driven rebalancing
// controller widens a hot model's set beyond R and packs a cold one below
// it (floor 1). A model absent from Overrides replicates at R, so a table
// without overrides behaves (and encodes, and renders) exactly as before.
type Table struct {
	Epoch    uint64
	Members  []int // sorted ascending, unique, non-negative
	Replicas int   // requested R; effective R is min(Replicas, len(Members))
	// Overrides maps model ID → replica count for that model (normalized:
	// clamped to [1, len(Members)], entries equal to the effective R are
	// dropped). nil means every model uses the base factor.
	Overrides map[ownermap.ModelID]int
}

// New returns the epoch-0 table of a fresh deployment: providers 0..n-1,
// replication factor r. Its placement is bit-identical to the legacy
// static-modulo scheme.
func New(n, r int) *Table {
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	t, err := Make(0, members, r)
	if err != nil {
		panic("placement: " + err.Error()) // n<=0 or r<1: caller bug
	}
	return t
}

// Make validates and builds a table. The member list is copied and sorted.
func Make(epoch uint64, members []int, replicas int) (*Table, error) {
	if len(members) == 0 {
		return nil, errors.New("placement: empty member list")
	}
	if replicas < 1 {
		return nil, fmt.Errorf("placement: replication factor %d < 1", replicas)
	}
	ms := append([]int(nil), members...)
	sort.Ints(ms)
	for i, m := range ms {
		if m < 0 {
			return nil, fmt.Errorf("placement: negative member %d", m)
		}
		if i > 0 && ms[i-1] == m {
			return nil, fmt.Errorf("placement: duplicate member %d", m)
		}
	}
	return &Table{Epoch: epoch, Members: ms, Replicas: replicas}, nil
}

// R returns the effective replication factor: Replicas clamped to the
// member count.
func (t *Table) R() int {
	if t.Replicas > len(t.Members) {
		return len(t.Members)
	}
	return t.Replicas
}

// ReplicasFor returns the effective replica count of one model: its
// override when present (clamped to the member count), else R().
func (t *Table) ReplicasFor(id ownermap.ModelID) int {
	if r, ok := t.Overrides[id]; ok {
		if r < 1 {
			r = 1
		}
		if r > len(t.Members) {
			r = len(t.Members)
		}
		return r
	}
	return t.R()
}

// normalizeOverrides clamps ov's counts to [1, n] members and drops
// entries equal to base (the table's effective R) — a no-op override and
// an absent one must compare, render and encode identically. Returns nil
// when nothing survives.
func normalizeOverrides(ov map[ownermap.ModelID]int, n, base int) map[ownermap.ModelID]int {
	var out map[ownermap.ModelID]int
	for id, r := range ov {
		if r < 1 {
			r = 1
		}
		if r > n {
			r = n
		}
		if r == base {
			continue
		}
		if out == nil {
			out = make(map[ownermap.ModelID]int, len(ov))
		}
		out[id] = r
	}
	return out
}

// WithOverrides returns a copy of t (same epoch) carrying the normalized
// override map. NextOverrides is the epoch-bumping form the heat
// controller uses.
func (t *Table) WithOverrides(ov map[ownermap.ModelID]int) *Table {
	c := *t
	c.Overrides = normalizeOverrides(ov, len(t.Members), t.R())
	return &c
}

// NextOverrides returns the epoch+1 table with the same members and base
// factor but the given per-model overrides — the successor table a
// heat-driven rebalance migrates to.
func (t *Table) NextOverrides(ov map[ownermap.ModelID]int) *Table {
	n := t.WithOverrides(ov)
	n.Epoch = t.Epoch + 1
	return n
}

// dense reports whether Members is exactly [0..n-1] — the legacy layout
// whose placement must stay bit-identical to the static modulo hash.
func (t *Table) dense() bool {
	for i, m := range t.Members {
		if m != i {
			return false
		}
	}
	return true
}

// ReplicaSet returns the providers holding id under this table, preferred
// (home) first. Dense tables reproduce the legacy scheme — home = id mod N
// plus the next R-1 successors; sparse tables rank members by rendezvous
// hash so a membership change moves only the models it must.
func (t *Table) ReplicaSet(id ownermap.ModelID) []int {
	n := len(t.Members)
	r := t.ReplicasFor(id)
	set := make([]int, r)
	if t.dense() {
		home := int(uint64(id) % uint64(n))
		for i := range set {
			set[i] = (home + i) % n
		}
		return set
	}
	type scored struct {
		member int
		score  uint64
	}
	ranked := make([]scored, n)
	for i, m := range t.Members {
		ranked[i] = scored{m, rendezvousScore(uint64(id), uint64(m))}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].score != ranked[j].score {
			return ranked[i].score > ranked[j].score
		}
		return ranked[i].member < ranked[j].member
	})
	for i := range set {
		set[i] = ranked[i].member
	}
	return set
}

// rendezvousScore is the highest-random-weight score of (model, member):
// FNV-1a over the two 64-bit words. Each member scores independently, so
// removing one member only re-homes the models it ranked first for, and
// adding one only claims the models it now out-scores everyone on.
func rendezvousScore(id, member uint64) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for _, w := range [2]uint64{id, member} {
		for i := 0; i < 8; i++ {
			h ^= (w >> (8 * i)) & 0xff
			h *= prime
		}
	}
	return h
}

// Contains reports whether provider is in id's replica set under this
// table.
func (t *Table) Contains(provider int, id ownermap.ModelID) bool {
	for _, pi := range t.ReplicaSet(id) {
		if pi == provider {
			return true
		}
	}
	return false
}

// Member reports whether provider is in the member list at all.
func (t *Table) Member(provider int) bool {
	i := sort.SearchInts(t.Members, provider)
	return i < len(t.Members) && t.Members[i] == provider
}

// WithMember returns the next-epoch table with provider added. Adding a
// present member is an error (an epoch bump must change placement). Heat
// overrides carry forward (re-normalized against the new member count).
func (t *Table) WithMember(provider int) (*Table, error) {
	if provider < 0 {
		return nil, fmt.Errorf("placement: negative member %d", provider)
	}
	if t.Member(provider) {
		return nil, fmt.Errorf("placement: provider %d is already a member of epoch %d", provider, t.Epoch)
	}
	return t.Next(append(append([]int(nil), t.Members...), provider))
}

// WithoutMember returns the next-epoch table with provider removed.
func (t *Table) WithoutMember(provider int) (*Table, error) {
	if !t.Member(provider) {
		return nil, fmt.Errorf("placement: provider %d is not a member of epoch %d", provider, t.Epoch)
	}
	if len(t.Members) == 1 {
		return nil, errors.New("placement: cannot remove the last member")
	}
	ms := make([]int, 0, len(t.Members)-1)
	for _, m := range t.Members {
		if m != provider {
			ms = append(ms, m)
		}
	}
	return t.Next(ms)
}

// Next returns the epoch+1 table over an arbitrary member list (same R).
// Heat overrides carry forward, re-normalized against the new list.
func (t *Table) Next(members []int) (*Table, error) {
	n, err := Make(t.Epoch+1, members, t.Replicas)
	if err != nil {
		return nil, err
	}
	n.Overrides = normalizeOverrides(t.Overrides, len(n.Members), n.R())
	return n, nil
}

// Equal reports whether two tables are identical (epoch, members, R and
// per-model overrides).
func (t *Table) Equal(o *Table) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Epoch != o.Epoch || t.Replicas != o.Replicas || len(t.Members) != len(o.Members) {
		return false
	}
	for i, m := range t.Members {
		if o.Members[i] != m {
			return false
		}
	}
	if len(t.Overrides) != len(o.Overrides) {
		return false
	}
	for id, r := range t.Overrides {
		if o.Overrides[id] != r {
			return false
		}
	}
	return true
}

// String renders the table in the canonical "table{epoch=E r=R
// members=a,b,c}" form that TableFromError parses back out of error text.
// Per-model overrides append an " ov=id:r,id:r" section (sorted by model
// ID); tables without overrides render exactly as they always have, and
// both forms survive the text-only wire round trip.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "table{epoch=%d r=%d members=", t.Epoch, t.Replicas)
	for i, m := range t.Members {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteString(strconv.Itoa(m))
	}
	if len(t.Overrides) > 0 {
		sb.WriteString(" ov=")
		ids := make([]ownermap.ModelID, 0, len(t.Overrides))
		for id := range t.Overrides {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for i, id := range ids {
			if i > 0 {
				sb.WriteByte(',')
			}
			fmt.Fprintf(&sb, "%d:%d", id, t.Overrides[id])
		}
	}
	sb.WriteByte('}')
	return sb.String()
}

// --- dual-epoch state ---------------------------------------------------------

// State is a provider's or client's placement view: the current table
// plus, while a migration is draining, the previous one. Prev == nil means
// no migration is in flight.
type State struct {
	Cur  *Table
	Prev *Table
}

// Migrating reports whether two epochs are active.
func (s *State) Migrating() bool { return s != nil && s.Prev != nil }

// ReplicaSet is the current epoch's replica set (where data will live once
// any in-flight migration completes).
func (s *State) ReplicaSet(id ownermap.ModelID) []int { return s.Cur.ReplicaSet(id) }

// ReadOrder returns the read-preference order for id: the current epoch's
// replicas first (data is migrating toward them), then any previous-epoch
// replicas not in the current set (where the data still is until the drain
// completes).
func (s *State) ReadOrder(id ownermap.ModelID) []int {
	set := s.Cur.ReplicaSet(id)
	if s.Prev == nil {
		return set
	}
	in := make(map[int]bool, len(set))
	for _, pi := range set {
		in[pi] = true
	}
	for _, pi := range s.Prev.ReplicaSet(id) {
		if !in[pi] {
			set = append(set, pi)
		}
	}
	return set
}

// WriteSet returns the providers a mutation of id must fan out to: the
// union of the active epochs' replica sets (current epoch first). Writing
// through both epochs is what lets no request fail during a migration.
func (s *State) WriteSet(id ownermap.ModelID) []int { return s.ReadOrder(id) }

// Contains reports whether provider is in id's replica set under any
// active epoch.
func (s *State) Contains(provider int, id ownermap.ModelID) bool {
	if s.Cur.Contains(provider, id) {
		return true
	}
	return s.Prev != nil && s.Prev.Contains(provider, id)
}

// CatchingUp reports whether provider joined id's replica set in the
// current epoch while the previous epoch is still active — i.e. the
// provider legitimately may not hold id's state yet because the rebalancer
// has not backfilled it. Misses there mean "ask the previous owners", not
// "does not exist".
func (s *State) CatchingUp(provider int, id ownermap.ModelID) bool {
	return s.Prev != nil && s.Cur.Contains(provider, id) && !s.Prev.Contains(provider, id)
}

// EpochOf returns s's current epoch, tolerating nil states and tables (0
// means "no placement armed"). Manifest writers and the restart-rejoin
// handshake use it to compare placement views without nil checks.
func EpochOf(s *State) uint64 {
	if s == nil || s.Cur == nil {
		return 0
	}
	return s.Cur.Epoch
}

// --- wire codec ---------------------------------------------------------------

// stateFlagOverrides marks a state encoding whose tables carry per-model
// override sections. Writers set it only when some table actually has
// overrides, so override-free states encode bit-identically to the
// pre-override format — old persisted manifests keep decoding, and old
// encodings keep comparing equal byte for byte.
const stateFlagOverrides = 4

func (t *Table) encodeTo(w *wire.Writer, withOverrides bool) {
	w.U64(t.Epoch)
	w.U32(uint32(t.Replicas))
	w.U32(uint32(len(t.Members)))
	for _, m := range t.Members {
		w.U32(uint32(m))
	}
	if !withOverrides {
		return
	}
	ids := make([]ownermap.ModelID, 0, len(t.Overrides))
	for id := range t.Overrides {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	w.U32(uint32(len(ids)))
	for _, id := range ids {
		w.U64(uint64(id))
		w.U32(uint32(t.Overrides[id]))
	}
}

func decodeTable(r *wire.Reader, withOverrides bool) (*Table, error) {
	epoch := r.U64()
	replicas := int(r.U32())
	n := int(r.U32())
	if r.Err() != nil || n > r.Remaining()/4+1 {
		return nil, wire.ErrTruncated
	}
	members := make([]int, n)
	for i := range members {
		members[i] = int(r.U32())
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	t, err := Make(epoch, members, replicas)
	if err != nil {
		return nil, err
	}
	if !withOverrides {
		return t, nil
	}
	k := int(r.U32())
	if r.Err() != nil || k > r.Remaining()/12+1 {
		return nil, wire.ErrTruncated
	}
	ov := make(map[ownermap.ModelID]int, k)
	for i := 0; i < k; i++ {
		id := ownermap.ModelID(r.U64())
		ov[id] = int(r.U32())
	}
	if r.Err() != nil {
		return nil, r.Err()
	}
	t.Overrides = normalizeOverrides(ov, len(t.Members), t.R())
	return t, nil
}

// EncodeState serializes a placement state (nil allowed: an unguarded
// provider reports "no table").
func EncodeState(s *State) []byte {
	w := wire.NewWriter(64)
	var flags uint8
	if s != nil && s.Cur != nil {
		flags |= 1
	}
	if s != nil && s.Prev != nil {
		flags |= 2
	}
	if s != nil && (s.Cur != nil && len(s.Cur.Overrides) > 0 || s.Prev != nil && len(s.Prev.Overrides) > 0) {
		flags |= stateFlagOverrides
	}
	w.U8(flags)
	withOv := flags&stateFlagOverrides != 0
	if flags&1 != 0 {
		s.Cur.encodeTo(w, withOv)
	}
	if flags&2 != 0 {
		s.Prev.encodeTo(w, withOv)
	}
	return w.Bytes()
}

// DecodeState parses EncodeState's output. A "no table" encoding decodes
// to nil.
func DecodeState(b []byte) (*State, error) {
	r := wire.NewReader(b)
	flags := r.U8()
	if r.Err() != nil {
		return nil, r.Err()
	}
	if flags&1 == 0 {
		return nil, nil
	}
	withOv := flags&stateFlagOverrides != 0
	s := &State{}
	var err error
	if s.Cur, err = decodeTable(r, withOv); err != nil {
		return nil, err
	}
	if flags&2 != 0 {
		if s.Prev, err = decodeTable(r, withOv); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// --- typed errors over a text-only wire ---------------------------------------

// ErrWrongEpoch is the sentinel a WrongEpochError wraps, for local
// errors.Is matching.
var ErrWrongEpoch = errors.New("placement: wrong epoch")

// wrongEpochMarker prefixes the embedded table in a WrongEpochError's
// text. The RPC layer flattens remote errors to text, so the marker (not
// the type) is what crosses the wire; TableFromError parses it back.
const wrongEpochMarker = "wrong epoch (current "

// WrongEpochError rejects a request placed under an epoch this provider no
// longer (or does not yet) serve, carrying the provider's current table so
// a stale client can adopt it and retry without an extra round trip.
type WrongEpochError struct{ Table *Table }

// Error renders "placement: wrong epoch (current table{...})" — parseable
// by TableFromError even after crossing the wire as plain text.
func (e *WrongEpochError) Error() string {
	return "placement: " + wrongEpochMarker + e.Table.String() + ")"
}

// Is matches ErrWrongEpoch.
func (e *WrongEpochError) Is(target error) bool { return target == ErrWrongEpoch }

// TableFromError extracts the placement table embedded in a wrong-epoch
// rejection, whether the error is the local typed value or its text-only
// remote form.
func TableFromError(err error) (*Table, bool) {
	if err == nil {
		return nil, false
	}
	var we *WrongEpochError
	if errors.As(err, &we) {
		return we.Table, true
	}
	text := err.Error()
	i := strings.Index(text, wrongEpochMarker)
	if i < 0 {
		return nil, false
	}
	return parseTable(text[i+len(wrongEpochMarker):])
}

// parseTable parses the leading "table{epoch=E r=R members=a,b,c}" of s.
func parseTable(s string) (*Table, bool) {
	const prefix = "table{epoch="
	if !strings.HasPrefix(s, prefix) {
		return nil, false
	}
	s = s[len(prefix):]
	end := strings.IndexByte(s, '}')
	if end < 0 {
		return nil, false
	}
	s = s[:end]
	epochStr, rest, ok := strings.Cut(s, " r=")
	if !ok {
		return nil, false
	}
	rStr, memberStr, ok := strings.Cut(rest, " members=")
	if !ok {
		return nil, false
	}
	epoch, err1 := strconv.ParseUint(epochStr, 10, 64)
	r, err2 := strconv.Atoi(rStr)
	if err1 != nil || err2 != nil {
		return nil, false
	}
	memberStr, ovStr, hasOv := strings.Cut(memberStr, " ov=")
	var members []int
	for _, part := range strings.Split(memberStr, ",") {
		m, err := strconv.Atoi(part)
		if err != nil {
			return nil, false
		}
		members = append(members, m)
	}
	t, err := Make(epoch, members, r)
	if err != nil {
		return nil, false
	}
	if hasOv {
		ov := make(map[ownermap.ModelID]int)
		for _, part := range strings.Split(ovStr, ",") {
			idStr, cntStr, ok := strings.Cut(part, ":")
			if !ok {
				return nil, false
			}
			id, err1 := strconv.ParseUint(idStr, 10, 64)
			cnt, err2 := strconv.Atoi(cntStr)
			if err1 != nil || err2 != nil {
				return nil, false
			}
			ov[ownermap.ModelID(id)] = cnt
		}
		t.Overrides = normalizeOverrides(ov, len(t.Members), t.R())
	}
	return t, true
}

// notMigratedText is the marker a catching-up replica's misses carry; like
// the wrong-epoch marker it must survive text-only remote errors.
const notMigratedText = "placement: not migrated here yet"

// ErrNotMigrated marks a read or refcount miss on a replica that joined
// the model's set in the current epoch but has not been backfilled yet;
// callers should fall back to (or let repair replay from) the previous
// epoch's owners.
var ErrNotMigrated = errors.New(notMigratedText)

// IsNotMigrated reports whether err is a catching-up replica's miss, local
// or text-only remote.
func IsNotMigrated(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrNotMigrated) {
		return true
	}
	return strings.Contains(err.Error(), notMigratedText)
}
