// Package placement computes and carries EvoStore's epoch-versioned
// placement table: the single structure clients, providers and tools agree
// on to decide which providers hold a model's metadata and segments.
//
// The paper (§4.1) pins a model to provider `id mod N` forever; replication
// extended that to the next R-1 modulo successors. Both are special cases
// of a Table whose member list is exactly [0..N-1]: for such *dense*
// tables ReplicaSet reproduces the legacy modulo arithmetic bit for bit,
// so epoch 0 of any never-resized deployment is wire- and
// placement-compatible with every earlier binary. Once membership changes
// (a provider drained away or a fresh one joined), the member list stops
// being dense and ReplicaSet switches to rendezvous (highest-random-
// weight) hashing over the members, which moves only the models whose
// replica sets must move.
//
// A Table is immutable once built. Membership changes produce a new Table
// with Epoch+1 (WithMember / WithoutMember); during the migration both
// tables stay active as a State{Cur, Prev} pair: reads prefer the new
// epoch's replicas and fall back to the old, writes fan out to the union,
// and providers accept writes valid in either epoch. The client.Rebalancer
// drives the transition (see internal/client/rebalance.go).
//
// Contracts:
//   - Thread safety: Tables and States are immutable after construction;
//     share them freely.
//   - Determinism: ReplicaSet is a pure function of (Members, Replicas,
//     id). Two parties holding equal tables always agree on placement.
//   - Convergent installs: a stale table install is a no-op, an
//     equal-epoch single state supersedes the dual state, and a newer
//     epoch always wins — installs commute, so broadcasts and retries
//     need no ordering.
//   - Wire: Encode/DecodeState ride rpc.Message.Meta; the typed
//     WrongEpochError embeds its table into the error *text* so it
//     survives the RPC layer's text-only remote errors (see
//     TableFromError).
package placement
