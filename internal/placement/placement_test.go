package placement

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ownermap"
)

// TestEpochZeroMatchesLegacyModulo is the golden compatibility proof: the
// epoch-0 table of every deployment size must place every model exactly
// where the static modulo hash (home = id mod N, replicas on the next R-1
// successors) put it — bit-identical, for R=1 and R>1.
func TestEpochZeroMatchesLegacyModulo(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 5, 8, 16} {
		for _, r := range []int{1, 2, 3, n} {
			if r > n {
				continue
			}
			tbl := New(n, r)
			for id := 0; id < 4096; id++ {
				home := id % n
				want := make([]int, r)
				for i := range want {
					want[i] = (home + i) % n
				}
				got := tbl.ReplicaSet(ownermap.ModelID(id))
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("n=%d R=%d: ReplicaSet(%d) = %v, want legacy %v", n, r, id, got, want)
				}
			}
		}
	}
}

// TestReplicaSetSparse checks the rendezvous path's invariants: correct
// cardinality, members only, no duplicates, home-first determinism, and
// minimal movement — removing a member must not move any model that member
// did not hold, and adding one must not shuffle models between old members.
func TestReplicaSetSparse(t *testing.T) {
	tbl, err := Make(1, []int{0, 2, 3, 5, 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	isMember := map[int]bool{0: true, 2: true, 3: true, 5: true, 7: true}
	for id := 0; id < 2048; id++ {
		set := tbl.ReplicaSet(ownermap.ModelID(id))
		if len(set) != 2 || set[0] == set[1] {
			t.Fatalf("ReplicaSet(%d) = %v", id, set)
		}
		for _, pi := range set {
			if !isMember[pi] {
				t.Fatalf("ReplicaSet(%d) = %v includes non-member %d", id, set, pi)
			}
		}
		if got := tbl.ReplicaSet(ownermap.ModelID(id)); !reflect.DeepEqual(got, set) {
			t.Fatalf("ReplicaSet(%d) not deterministic: %v then %v", id, set, got)
		}
	}

	// Minimal movement on removal: models not placed on the removed member
	// keep their replica set verbatim.
	next, err := tbl.WithoutMember(3)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for id := 0; id < 2048; id++ {
		mid := ownermap.ModelID(id)
		before, after := tbl.ReplicaSet(mid), next.ReplicaSet(mid)
		if !tbl.Contains(3, mid) {
			if !reflect.DeepEqual(before, after) {
				t.Fatalf("model %d moved (%v -> %v) though member 3 never held it", id, before, after)
			}
			continue
		}
		moved++
	}
	if moved == 0 {
		t.Fatal("member 3 held no models at all — rendezvous is not spreading load")
	}

	// Minimal movement on join: a changed set only ever swaps members out
	// for the new joiner; survivors keep their slots' relative order.
	joined, err := tbl.WithMember(4)
	if err != nil {
		t.Fatal(err)
	}
	claimed := 0
	for id := 0; id < 2048; id++ {
		mid := ownermap.ModelID(id)
		before, after := tbl.ReplicaSet(mid), joined.ReplicaSet(mid)
		if reflect.DeepEqual(before, after) {
			continue
		}
		claimed++
		if !joined.Contains(4, mid) {
			t.Fatalf("model %d changed set (%v -> %v) without the joiner claiming it", id, before, after)
		}
	}
	if claimed == 0 {
		t.Fatal("joining member 4 claimed no models — rendezvous is not rebalancing")
	}
}

func TestTableMembership(t *testing.T) {
	tbl := New(4, 2)
	if _, err := tbl.WithMember(2); err == nil {
		t.Error("adding an existing member succeeded")
	}
	if _, err := tbl.WithoutMember(9); err == nil {
		t.Error("removing a non-member succeeded")
	}
	next, err := tbl.WithoutMember(1)
	if err != nil {
		t.Fatal(err)
	}
	if next.Epoch != 1 || next.Member(1) || !next.Member(3) {
		t.Errorf("WithoutMember(1) = %v", next)
	}
	if !tbl.Member(1) {
		t.Error("WithoutMember mutated the receiver")
	}
	one := New(1, 1)
	if _, err := one.WithoutMember(0); err == nil {
		t.Error("removing the last member succeeded")
	}
}

func TestStateDualEpoch(t *testing.T) {
	old := New(4, 2)
	next, err := old.WithoutMember(1)
	if err != nil {
		t.Fatal(err)
	}
	st := &State{Cur: next, Prev: old}
	if !st.Migrating() {
		t.Fatal("dual state not migrating")
	}
	for id := 0; id < 512; id++ {
		mid := ownermap.ModelID(id)
		order := st.ReadOrder(mid)
		// New epoch's set leads; old-only owners trail; no duplicates.
		cur := next.ReplicaSet(mid)
		if !reflect.DeepEqual(order[:len(cur)], cur) {
			t.Fatalf("ReadOrder(%d) = %v does not lead with the current set %v", id, order, cur)
		}
		seen := map[int]bool{}
		for _, pi := range order {
			if seen[pi] {
				t.Fatalf("ReadOrder(%d) = %v has duplicates", id, order)
			}
			seen[pi] = true
		}
		for _, pi := range old.ReplicaSet(mid) {
			if !seen[pi] {
				t.Fatalf("ReadOrder(%d) = %v misses previous-epoch owner %d", id, order, pi)
			}
		}
		// CatchingUp: exactly the members new to the set this epoch.
		for _, pi := range order {
			wantCatch := next.Contains(pi, mid) && !old.Contains(pi, mid)
			if got := st.CatchingUp(pi, mid); got != wantCatch {
				t.Fatalf("CatchingUp(%d, %d) = %v, want %v", pi, id, got, wantCatch)
			}
		}
	}
	// A single-epoch state never reports catching-up replicas.
	single := &State{Cur: next}
	for id := 0; id < 64; id++ {
		for pi := 0; pi < 4; pi++ {
			if single.CatchingUp(pi, ownermap.ModelID(id)) {
				t.Fatalf("single-epoch state reports CatchingUp(%d, %d)", pi, id)
			}
		}
	}
}

func TestStateCodecRoundTrip(t *testing.T) {
	old := New(5, 3)
	next, err := old.WithMember(7)
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range []*State{
		nil,
		{Cur: old},
		{Cur: next, Prev: old},
	} {
		got, err := DecodeState(EncodeState(st))
		if err != nil {
			t.Fatalf("decode(%v): %v", st, err)
		}
		switch {
		case st == nil:
			if got != nil {
				t.Fatalf("decode(nil) = %v", got)
			}
		case got == nil:
			t.Fatalf("decode(%v) = nil", st)
		default:
			if !got.Cur.Equal(st.Cur) || !got.Prev.Equal(st.Prev) {
				t.Fatalf("round trip %v -> %v", st, got)
			}
		}
	}
	if _, err := DecodeState([]byte{1, 2, 3}); err == nil {
		t.Error("torn state decoded without error")
	}
}

// TestWrongEpochErrorSurvivesText proves the self-update path works across
// the RPC layer's text-only remote errors: the embedded table must parse
// back out of an arbitrarily wrapped error string.
func TestWrongEpochErrorSurvivesText(t *testing.T) {
	tbl, err := Make(3, []int{0, 2, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	typed := fmt.Errorf("provider 1: store 42: %w", &WrongEpochError{Table: tbl})
	if !errors.Is(typed, ErrWrongEpoch) {
		t.Fatal("typed error does not match ErrWrongEpoch")
	}
	// Simulate the wire: only the text survives.
	textOnly := errors.New("rpc: remote: " + typed.Error())
	for _, e := range []error{typed, textOnly} {
		got, ok := TableFromError(e)
		if !ok {
			t.Fatalf("TableFromError(%v) found nothing", e)
		}
		if !got.Equal(tbl) {
			t.Fatalf("TableFromError(%v) = %v, want %v", e, got, tbl)
		}
	}
	if _, ok := TableFromError(errors.New("some other failure")); ok {
		t.Error("TableFromError matched an unrelated error")
	}

	nm := fmt.Errorf("provider 2: owner 7: %w", ErrNotMigrated)
	if !IsNotMigrated(nm) || !IsNotMigrated(errors.New("rpc: remote: "+nm.Error())) {
		t.Error("IsNotMigrated missed a catching-up miss")
	}
	if IsNotMigrated(errors.New("not found")) {
		t.Error("IsNotMigrated matched an unrelated error")
	}
}
