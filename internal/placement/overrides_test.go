package placement

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"testing"

	"repro/internal/ownermap"
)

// TestOverridesWidenAndPack pins the per-model replica-count semantics:
// an override above R widens that model's set (prefix-stable: the base
// set is a prefix of the widened one), an override below R packs it, and
// every other model keeps the base placement.
func TestOverridesWidenAndPack(t *testing.T) {
	base := New(5, 2)
	tbl := base.WithOverrides(map[ownermap.ModelID]int{7: 4, 9: 1, 3: 2})

	if got := tbl.ReplicasFor(7); got != 4 {
		t.Errorf("ReplicasFor(7) = %d, want 4", got)
	}
	if got := tbl.ReplicasFor(9); got != 1 {
		t.Errorf("ReplicasFor(9) = %d, want 1", got)
	}
	// An override equal to base R normalizes away.
	if _, ok := tbl.Overrides[3]; ok {
		t.Error("no-op override for model 3 survived normalization")
	}
	if got := tbl.ReplicasFor(3); got != 2 {
		t.Errorf("ReplicasFor(3) = %d, want base 2", got)
	}

	wide, packed, plain := tbl.ReplicaSet(7), tbl.ReplicaSet(9), base.ReplicaSet(8)
	if len(wide) != 4 || len(packed) != 1 || len(plain) != 2 {
		t.Fatalf("set sizes: wide=%v packed=%v plain=%v", wide, packed, plain)
	}
	// Widening extends the base set rather than reshuffling it, so the
	// data already on the base replicas stays put.
	if got := base.ReplicaSet(7); !reflect.DeepEqual(wide[:2], got) {
		t.Errorf("widened set %v does not extend base set %v", wide, got)
	}
	if got := base.ReplicaSet(9); packed[0] != got[0] {
		t.Errorf("packed set %v does not keep the home of base set %v", packed, got)
	}
	// Models without overrides are untouched.
	if got := tbl.ReplicaSet(8); !reflect.DeepEqual(got, plain) {
		t.Errorf("unrelated model moved: %v vs %v", got, plain)
	}
}

// TestOverridesClamp pins the normalization bounds: counts clamp to
// [1, members]; clamping to exactly R drops the entry.
func TestOverridesClamp(t *testing.T) {
	tbl := New(3, 2).WithOverrides(map[ownermap.ModelID]int{1: 0, 2: 99, 3: -5})
	if got := tbl.ReplicasFor(1); got != 1 {
		t.Errorf("ReplicasFor(1) = %d, want clamp to 1", got)
	}
	if got := tbl.ReplicasFor(2); got != 3 {
		t.Errorf("ReplicasFor(2) = %d, want clamp to members (3)", got)
	}
	if got := tbl.ReplicasFor(3); got != 1 {
		t.Errorf("ReplicasFor(3) = %d, want clamp to 1", got)
	}
	// Clamping 99 → 3 on a 3-member R=3 table is a no-op → dropped.
	full := New(3, 3).WithOverrides(map[ownermap.ModelID]int{2: 99})
	if full.Overrides != nil {
		t.Errorf("override clamped to base R survived: %v", full.Overrides)
	}
}

// TestOverridesStringRoundTrip pins the text-wire contract: a table with
// overrides embedded in a WrongEpochError must parse back identical —
// placement tables cross the RPC layer as error text.
func TestOverridesStringRoundTrip(t *testing.T) {
	tbl := New(4, 2).WithOverrides(map[ownermap.ModelID]int{12: 3, 5: 1})
	tbl.Epoch = 9

	if want := "table{epoch=9 r=2 members=0,1,2,3 ov=5:1,12:3}"; tbl.String() != want {
		t.Errorf("String() = %q, want %q", tbl.String(), want)
	}

	err := fmt.Errorf("remote: %s", (&WrongEpochError{Table: tbl}).Error())
	got, ok := TableFromError(errors.New(err.Error()))
	if !ok {
		t.Fatalf("TableFromError failed on %q", err)
	}
	if !got.Equal(tbl) {
		t.Errorf("round-tripped table %v != %v", got, tbl)
	}

	// Override-free tables keep the legacy rendering.
	plain := New(4, 2)
	if want := "table{epoch=0 r=2 members=0,1,2,3}"; plain.String() != want {
		t.Errorf("plain String() = %q, want %q", plain.String(), want)
	}
}

// TestOverridesStateCodecRoundTrip pins the binary codec: override-free
// states encode bit-identically to the legacy format, and states with
// overrides round-trip through EncodeState/DecodeState — including a dual
// state whose epochs disagree on overrides.
func TestOverridesStateCodecRoundTrip(t *testing.T) {
	plain := &State{Cur: New(4, 2)}
	if b := EncodeState(plain); b[0]&stateFlagOverrides != 0 {
		t.Error("override-free state set the overrides flag")
	}

	old := New(4, 2)
	next := old.NextOverrides(map[ownermap.ModelID]int{7: 3, 11: 1})
	if next.Epoch != old.Epoch+1 {
		t.Fatalf("NextOverrides epoch = %d", next.Epoch)
	}
	dual := &State{Cur: next, Prev: old}
	got, err := DecodeState(EncodeState(dual))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Cur.Equal(next) || !got.Prev.Equal(old) {
		t.Errorf("decoded state %v/%v != %v/%v", got.Cur, got.Prev, next, old)
	}

	// The legacy (pre-override) encoding of the same member list still
	// decodes: bit-compat with persisted manifests.
	legacy := EncodeState(&State{Cur: old})
	dec, err := DecodeState(legacy)
	if err != nil || !dec.Cur.Equal(old) {
		t.Errorf("legacy encoding decode = %v, %v", dec, err)
	}
}

// TestOverridesCarryThroughMembershipChanges pins that a join/drain epoch
// bump does not silently discard heat overrides — they re-normalize
// against the new member count instead.
func TestOverridesCarryThroughMembershipChanges(t *testing.T) {
	tbl := New(3, 2).WithOverrides(map[ownermap.ModelID]int{7: 3, 9: 1})

	joined, err := tbl.WithMember(3)
	if err != nil {
		t.Fatal(err)
	}
	if got := joined.ReplicasFor(7); got != 3 {
		t.Errorf("after join ReplicasFor(7) = %d, want 3", got)
	}

	drained, err := tbl.WithoutMember(2)
	if err != nil {
		t.Fatal(err)
	}
	// 2 members left: the widen-to-3 clamps to 2 == base R and drops.
	if got := drained.ReplicasFor(7); got != 2 {
		t.Errorf("after drain ReplicasFor(7) = %d, want 2", got)
	}
	if got := drained.ReplicasFor(9); got != 1 {
		t.Errorf("after drain ReplicasFor(9) = %d, want 1", got)
	}
}

// TestOverridesEqual pins Equal's override comparison.
func TestOverridesEqual(t *testing.T) {
	a := New(4, 2).WithOverrides(map[ownermap.ModelID]int{7: 3})
	b := New(4, 2).WithOverrides(map[ownermap.ModelID]int{7: 3})
	c := New(4, 2).WithOverrides(map[ownermap.ModelID]int{7: 4})
	d := New(4, 2)
	if !a.Equal(b) {
		t.Error("identical override tables not Equal")
	}
	if a.Equal(c) || a.Equal(d) || d.Equal(a) {
		t.Error("tables with differing overrides compared Equal")
	}
}

// TestOverridesEpochZeroGoldenUnchanged re-runs the epoch-0 golden over a
// table that merely touched the override API with a no-op: placement must
// stay bit-identical to the legacy modulo scheme.
func TestOverridesEpochZeroGoldenUnchanged(t *testing.T) {
	base := New(4, 2)
	touched := base.WithOverrides(nil)
	for id := 0; id < 4096; id++ {
		want := base.ReplicaSet(ownermap.ModelID(id))
		got := touched.ReplicaSet(ownermap.ModelID(id))
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ReplicaSet(%d) = %v, want %v", id, got, want)
		}
	}
	if !bytes.Equal(EncodeState(&State{Cur: base}), EncodeState(&State{Cur: touched})) {
		t.Error("no-op override changed the state encoding")
	}
}
