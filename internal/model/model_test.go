package model

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func mustFlatten(t *testing.T, m *Model) *Flat {
	t.Helper()
	f, err := Flatten(m)
	if err != nil {
		t.Fatalf("Flatten(%s): %v", m.Name, err)
	}
	if err := f.Graph.Validate(); err != nil {
		t.Fatalf("flattened graph invalid: %v", err)
	}
	return f
}

func TestSequentialFlatten(t *testing.T) {
	m := Sequential("mlp", 16,
		Dense{In: 16, Out: 32, Activation: "relu", UseBias: true},
		Dense{In: 32, Out: 8, Activation: "softmax", UseBias: true},
	)
	f := mustFlatten(t, m)
	if f.NumLeaves() != 3 { // input + 2 dense
		t.Fatalf("NumLeaves = %d, want 3", f.NumLeaves())
	}
	// IDs must follow BFS order: input=0, dense0=1, dense1=2.
	if f.Leaves[0].Layer.Kind() != "input" || f.Leaves[1].Layer.Kind() != "dense" {
		t.Errorf("BFS order broken: %v %v", f.Leaves[0].Layer.Kind(), f.Leaves[1].Layer.Kind())
	}
	if !f.Graph.HasEdge(0, 1) || !f.Graph.HasEdge(1, 2) {
		t.Error("edges missing in flattened chain")
	}
	// Dense with bias: kernel 16*32*4 + bias 32*4 bytes.
	want := int64(16*32*4 + 32*4)
	if got := f.Graph.Vertices[1].ParamBytes; got != want {
		t.Errorf("vertex 1 ParamBytes = %d, want %d", got, want)
	}
}

func TestValidateErrors(t *testing.T) {
	m := New("empty")
	if err := m.Validate(); err == nil {
		t.Error("Validate accepted model with no inputs")
	}
	m2 := New("noout")
	m2.Input("in", 4)
	if err := m2.Validate(); err == nil {
		t.Error("Validate accepted model with no outputs")
	}
	m3 := New("orphan")
	in := m3.Input("in", 4)
	_ = in
	orphan := m3.Apply(Dense{In: 4, Out: 4}, "dangling")
	m3.SetOutputs(orphan)
	if err := m3.Validate(); err == nil {
		t.Error("Validate accepted non-input node without inputs")
	}
}

func TestApplyPanicsOnForeignNode(t *testing.T) {
	a := New("a")
	b := New("b")
	inA := a.Input("in", 4)
	defer func() {
		if recover() == nil {
			t.Error("Apply accepted node from another model")
		}
	}()
	b.Apply(Dense{In: 4, Out: 4}, "d", inA)
}

// TestFigure2Submodels reproduces the paper's Figure 2 / §4.2 argument:
// flattening submodels into leaf layers lengthens the common prefix.
//
// Grandparent = 1 → 2 → [A: 3 → 4] → 5
// Parent      = 1 → 2 → [A': 3 → 4'] → 5'
// Without decomposition, A ≠ A' would end the match at {1,2}. With leaf
// flattening, leaf 3 inside the submodel still matches: LCP = {1,2,3}.
func TestFigure2Submodels(t *testing.T) {
	subA := func(second Layer) *Model {
		s := New("A")
		in := s.Input("ain", 8)
		l3 := s.Apply(Dense{In: 8, Out: 8, Activation: "relu"}, "l3", in)
		l4 := s.Apply(second, "l4", l3)
		s.SetOutputs(l4)
		return s
	}
	build := func(sub *Model, last Layer) *Model {
		m := New("top")
		in := m.Input("l1", 8)
		l2 := m.Apply(Dense{In: 8, Out: 8, Activation: "relu"}, "l2", in)
		a := m.Apply(Submodel{M: sub}, "A", l2)
		l5 := m.Apply(last, "l5", a)
		m.SetOutputs(l5)
		return m
	}
	gp := build(subA(Dense{In: 8, Out: 8, Activation: "tanh"}), Dense{In: 8, Out: 4})
	par := build(subA(Dense{In: 8, Out: 16, Activation: "tanh"}), Dense{In: 16, Out: 4})

	fgp := mustFlatten(t, gp)
	fpar := mustFlatten(t, par)

	// Both flatten to 5 leaves: input, l2, A/l3, A/l4, l5.
	if fgp.NumLeaves() != 5 || fpar.NumLeaves() != 5 {
		t.Fatalf("leaves: gp=%d par=%d, want 5", fgp.NumLeaves(), fpar.NumLeaves())
	}
	// The submodel's inner input node must NOT appear as a leaf.
	for _, l := range fgp.Leaves {
		if l.Name == "A/ain" {
			t.Error("submodel input node leaked into flattened graph")
		}
	}
	lcp := graph.LCP(fpar.Graph, fgp.Graph)
	if len(lcp) != 3 {
		t.Fatalf("LCP with decomposed submodels = %v, want 3 vertices {input,l2,A/l3}", lcp)
	}
	if fpar.Leaves[lcp[2]].Name != "A/l3" {
		t.Errorf("third prefix leaf = %q, want A/l3", fpar.Leaves[lcp[2]].Name)
	}
}

func TestNestedSubmodelDepth2(t *testing.T) {
	inner := New("inner")
	iin := inner.Input("iin", 4)
	inner.SetOutputs(inner.Apply(Dense{In: 4, Out: 4}, "d", iin))

	mid := New("mid")
	min := mid.Input("min", 4)
	mid.SetOutputs(mid.Apply(Submodel{M: inner}, "inner", min))

	top := New("top")
	tin := top.Input("tin", 4)
	out := top.Apply(Submodel{M: mid}, "mid", tin)
	top.SetOutputs(out)

	f := mustFlatten(t, top)
	if f.NumLeaves() != 2 {
		t.Fatalf("NumLeaves = %d, want 2 (input + inner dense)", f.NumLeaves())
	}
	if f.Leaves[1].Name != "mid/inner/d" {
		t.Errorf("nested leaf name = %q, want mid/inner/d", f.Leaves[1].Name)
	}
}

func TestForkJoinFlatten(t *testing.T) {
	m := New("fork")
	in := m.Input("in", 8)
	a := m.Apply(Dense{In: 8, Out: 8}, "a", in)
	b := m.Apply(Dense{In: 8, Out: 8, Activation: "relu"}, "b", in)
	j := m.Apply(Add{}, "join", a, b)
	m.SetOutputs(j)
	f := mustFlatten(t, m)
	if f.NumLeaves() != 4 {
		t.Fatalf("NumLeaves = %d, want 4", f.NumLeaves())
	}
	join := graph.VertexID(3)
	if f.Graph.InDegree(join) != 2 {
		t.Errorf("join in-degree = %d, want 2", f.Graph.InDegree(join))
	}
}

func TestFlattenDeterministicIDs(t *testing.T) {
	build := func(outDim int) *Flat {
		m := Sequential("m", 8,
			Dense{In: 8, Out: 16},
			Activation{Fn: "relu"},
			Dense{In: 16, Out: outDim},
		)
		f, err := Flatten(m)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	a := build(4)
	b := build(10) // differs only in the last layer
	lcp := graph.LCP(b.Graph, a.Graph)
	if len(lcp) != 3 {
		t.Fatalf("shared prefix = %v, want first 3 vertices", lcp)
	}
	for i := 0; i < 3; i++ {
		if a.Graph.Vertices[i].ConfigSig != b.Graph.Vertices[i].ConfigSig {
			t.Errorf("vertex %d sig differs between identical prefixes", i)
		}
	}
}

func TestConfigSigIgnoresName(t *testing.T) {
	a := Dense{In: 4, Out: 4, Activation: "relu"}
	b := Dense{In: 4, Out: 4, Activation: "relu"}
	if a.ConfigSig() != b.ConfigSig() {
		t.Error("identical configs produced different sigs")
	}
	c := Dense{In: 4, Out: 4, Activation: "tanh"}
	if a.ConfigSig() == c.ConfigSig() {
		t.Error("different activations produced same sig")
	}
	d := Dense{In: 4, Out: 4, Activation: "relu", UseBias: true}
	if a.ConfigSig() == d.ConfigSig() {
		t.Error("bias flag ignored by sig")
	}
}

func TestLayerSigsDistinct(t *testing.T) {
	layers := []LeafLayer{
		Input{Dim: 8},
		Dense{In: 8, Out: 8},
		Conv2D{InCh: 3, OutCh: 8, KH: 3, KW: 3, Stride: 1},
		BatchNorm{Dim: 8},
		LayerNorm{Dim: 8},
		Embedding{Vocab: 100, Dim: 8},
		MultiHeadAttention{Dim: 8, Heads: 2},
		Activation{Fn: "relu"},
		Dropout{Rate100: 50},
		MaxPool2D{K: 2},
		AvgPool2D{K: 2},
		FlattenOp{},
		Add{},
		Concat{},
		Identity{},
	}
	seen := make(map[uint64]string)
	for _, l := range layers {
		s := l.ConfigSig()
		if prev, dup := seen[s]; dup {
			t.Errorf("sig collision between %s and %s", prev, l.Kind())
		}
		seen[s] = l.Kind()
	}
}

func TestParamSpecs(t *testing.T) {
	mha := MultiHeadAttention{Dim: 16, Heads: 4}
	specs := mha.ParamSpecs()
	if len(specs) != 4 {
		t.Fatalf("MHA specs = %d, want 4", len(specs))
	}
	if ParamBytes(mha) != int64(16*48*4+48*4+16*16*4+16*4) {
		t.Errorf("MHA ParamBytes = %d", ParamBytes(mha))
	}
	bn := BatchNorm{Dim: 10}
	if ParamBytes(bn) != 4*10*4 {
		t.Errorf("BatchNorm ParamBytes = %d", ParamBytes(bn))
	}
	if ParamBytes(Dropout{Rate100: 20}) != 0 {
		t.Error("Dropout should be parameter-free")
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	m := Sequential("m", 8, Dense{In: 8, Out: 8, UseBias: true}, BatchNorm{Dim: 8})
	f := mustFlatten(t, m)
	a := Materialize(f, 7)
	b := Materialize(f, 7)
	if !a.Equal(b) {
		t.Error("same seed produced different weights")
	}
	c := Materialize(f, 8)
	if a.Equal(c) {
		t.Error("different seeds produced identical weights")
	}
	if a.SizeBytes() != f.TotalParamBytes() {
		t.Errorf("weights size %d != graph param bytes %d", a.SizeBytes(), f.TotalParamBytes())
	}
}

func TestPerturbVertexChangesOnlyThatVertex(t *testing.T) {
	m := Sequential("m", 8, Dense{In: 8, Out: 8}, Dense{In: 8, Out: 8})
	f := mustFlatten(t, m)
	ws := Materialize(f, 1)
	orig := ws.Clone()
	ws.PerturbVertex(1, 99)
	if ws.VertexEqual(orig, 1) {
		t.Error("perturbed vertex unchanged")
	}
	if !ws.VertexEqual(orig, 2) {
		t.Error("unperturbed vertex changed")
	}
}

func TestEncodeDecodeVertexRoundtrip(t *testing.T) {
	m := Sequential("m", 8, Dense{In: 8, Out: 8, UseBias: true})
	f := mustFlatten(t, m)
	ws := Materialize(f, 3)
	seg := ws.EncodeVertex(1)
	ws2 := make(WeightSet, len(ws))
	if err := ws2.DecodeVertexInto(f, 1, seg); err != nil {
		t.Fatalf("DecodeVertexInto: %v", err)
	}
	if !ws.VertexEqual(ws2, 1) {
		t.Error("vertex roundtrip mismatch")
	}
	// Wrong vertex: specs of vertex 0 (input, no params) reject the segment.
	if err := ws2.DecodeVertexInto(f, 0, seg); err == nil {
		t.Error("DecodeVertexInto accepted mismatched specs")
	}
}

func TestFingerprintsDetectChange(t *testing.T) {
	m := Sequential("m", 8, Dense{In: 8, Out: 8}, Dense{In: 8, Out: 8})
	f := mustFlatten(t, m)
	ws := Materialize(f, 1)
	before := ws.Fingerprints()
	ws.PerturbVertex(2, 5)
	after := ws.Fingerprints()
	if before[2] == after[2] {
		t.Error("fingerprint missed vertex change")
	}
	if before[1] != after[1] {
		t.Error("fingerprint changed for untouched vertex")
	}
}

func TestSubmodelInputArityMismatch(t *testing.T) {
	sub := New("sub")
	i1 := sub.Input("i1", 4)
	i2 := sub.Input("i2", 4)
	sub.SetOutputs(sub.Apply(Add{}, "add", i1, i2))

	top := New("top")
	in := top.Input("in", 4)
	n := top.Apply(Submodel{M: sub}, "sub", in) // only 1 input for 2-ary submodel
	top.SetOutputs(n)
	if _, err := Flatten(top); err == nil {
		t.Error("Flatten accepted submodel arity mismatch")
	}
}

func TestMultiInputSubmodel(t *testing.T) {
	sub := New("sub")
	i1 := sub.Input("i1", 4)
	i2 := sub.Input("i2", 4)
	sub.SetOutputs(sub.Apply(Concat{}, "cat", i1, i2))

	top := New("top")
	in := top.Input("in", 4)
	a := top.Apply(Dense{In: 4, Out: 4}, "a", in)
	b := top.Apply(Dense{In: 4, Out: 4, Activation: "relu"}, "b", in)
	s := top.Apply(Submodel{M: sub}, "merge", a, b)
	top.SetOutputs(s)

	f := mustFlatten(t, top)
	// Leaves: in, a, b, merge/cat = 4.
	if f.NumLeaves() != 4 {
		t.Fatalf("NumLeaves = %d, want 4", f.NumLeaves())
	}
	cat := graph.VertexID(3)
	if f.Graph.InDegree(cat) != 2 {
		t.Errorf("concat in-degree = %d, want 2", f.Graph.InDegree(cat))
	}
}

// randomNested builds a random model with nested submodels, driven by a
// deterministic choice stream.
func randomNested(r *rand.Rand, depth int) *Model {
	m := New("rnd")
	cur := m.Input("in", 8)
	n := 1 + r.Intn(5)
	for i := 0; i < n; i++ {
		switch r.Intn(4) {
		case 0:
			cur = m.Apply(Dense{In: 8, Out: 8, Activation: "relu"}, fmt.Sprintf("d%d", i), cur)
		case 1:
			cur = m.Apply(LayerNorm{Dim: 8}, fmt.Sprintf("ln%d", i), cur)
		case 2:
			br := m.Apply(Dense{In: 8, Out: 8}, fmt.Sprintf("br%d", i), cur)
			cur = m.Apply(Add{}, fmt.Sprintf("add%d", i), cur, br)
		default:
			if depth > 0 {
				sub := randomNested(r, depth-1)
				cur = m.Apply(Submodel{M: sub}, fmt.Sprintf("sub%d", i), cur)
			} else {
				cur = m.Apply(Activation{Fn: "relu"}, fmt.Sprintf("act%d", i), cur)
			}
		}
	}
	m.SetOutputs(cur)
	return m
}

// countLeaves recursively counts the leaf-layer placements a model will
// flatten to (submodel inputs bind away, everything else is a leaf).
func countLeaves(m *Model, topLevel bool) int {
	n := 0
	for _, node := range m.Nodes() {
		switch l := node.Layer.(type) {
		case Input:
			if topLevel {
				n++
			}
		case Submodel:
			n += countLeaves(l.M, false)
		default:
			n++
		}
	}
	return n
}

// Property: flattening a random nested model yields exactly one vertex per
// leaf placement, a valid DAG, and byte sizes that match the layer specs.
func TestQuickFlattenInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := randomNested(r, 2)
		flat, err := Flatten(m)
		if err != nil {
			return false
		}
		if err := flat.Graph.Validate(); err != nil {
			return false
		}
		if flat.NumLeaves() != countLeaves(m, true) {
			return false
		}
		var specBytes int64
		for _, leaf := range flat.Leaves {
			specBytes += ParamBytes(leaf.Layer)
		}
		return specBytes == flat.TotalParamBytes()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: materialized weights always satisfy their specs.
func TestQuickMaterializeMatchesSpecs(t *testing.T) {
	f := func(seed int64, wseed uint64) bool {
		r := rand.New(rand.NewSource(seed))
		flat, err := Flatten(randomNested(r, 1))
		if err != nil {
			return false
		}
		ws := Materialize(flat, wseed)
		for v, leaf := range flat.Leaves {
			if len(ws[v]) != len(leaf.Specs) {
				return false
			}
			for i, spec := range leaf.Specs {
				tt := ws[v][i]
				if tt.DType != spec.DType || int64(tt.SizeBytes()) != spec.SizeBytes() {
					return false
				}
				if err := tt.Validate(); err != nil {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
