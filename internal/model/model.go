package model

import (
	"fmt"
)

// Node is one placement of a layer inside a model graph, wired to the nodes
// that produce its inputs (Keras functional API style).
type Node struct {
	Layer  Layer
	Name   string
	Inputs []*Node

	model *Model
	index int // creation order within the owning model
}

// Model is a directed acyclic graph of layer nodes. A Model can itself be
// used as a layer inside another model via Submodel, giving the recursive
// nested structure the paper's flattening handles.
type Model struct {
	Name    string
	nodes   []*Node
	inputs  []*Node
	outputs []*Node
}

// New creates an empty model.
func New(name string) *Model {
	return &Model{Name: name}
}

// Input adds an input node with the given feature dimension.
func (m *Model) Input(name string, dim int) *Node {
	return m.Apply(Input{Dim: dim}, name)
}

// Apply places layer l as a new node named name, consuming the outputs of
// the given input nodes, and returns the new node. Input nodes must belong
// to the same model.
func (m *Model) Apply(l Layer, name string, inputs ...*Node) *Node {
	for _, in := range inputs {
		if in.model != m {
			panic(fmt.Sprintf("model %q: input node %q belongs to model %q",
				m.Name, in.Name, in.model.Name))
		}
	}
	n := &Node{
		Layer:  l,
		Name:   name,
		Inputs: append([]*Node(nil), inputs...),
		model:  m,
		index:  len(m.nodes),
	}
	m.nodes = append(m.nodes, n)
	if _, isInput := l.(Input); isInput {
		m.inputs = append(m.inputs, n)
	}
	return n
}

// SetOutputs declares the model's output nodes.
func (m *Model) SetOutputs(outs ...*Node) {
	for _, o := range outs {
		if o.model != m {
			panic(fmt.Sprintf("model %q: output node %q belongs to another model", m.Name, o.Name))
		}
	}
	m.outputs = append([]*Node(nil), outs...)
}

// Inputs returns the model's input nodes in declaration order.
func (m *Model) Inputs() []*Node { return m.inputs }

// Outputs returns the declared output nodes.
func (m *Model) Outputs() []*Node { return m.outputs }

// Nodes returns all nodes in creation order.
func (m *Model) Nodes() []*Node { return m.nodes }

// Validate checks the model is well formed: at least one input, declared
// outputs, all non-input nodes have inputs, and submodels validate
// recursively.
func (m *Model) Validate() error {
	if len(m.inputs) == 0 {
		return fmt.Errorf("model %q: no input nodes", m.Name)
	}
	if len(m.outputs) == 0 {
		return fmt.Errorf("model %q: no outputs declared", m.Name)
	}
	for _, n := range m.nodes {
		if _, isInput := n.Layer.(Input); isInput {
			if len(n.Inputs) != 0 {
				return fmt.Errorf("model %q: input node %q has inputs", m.Name, n.Name)
			}
			continue
		}
		if len(n.Inputs) == 0 {
			return fmt.Errorf("model %q: node %q has no inputs", m.Name, n.Name)
		}
		switch l := n.Layer.(type) {
		case Submodel:
			if err := l.M.Validate(); err != nil {
				return fmt.Errorf("model %q: submodel node %q: %w", m.Name, n.Name, err)
			}
			if len(l.M.inputs) != len(n.Inputs) {
				return fmt.Errorf("model %q: submodel node %q consumes %d inputs but submodel declares %d",
					m.Name, n.Name, len(n.Inputs), len(l.M.inputs))
			}
		case LeafLayer:
			// fine
		default:
			return fmt.Errorf("model %q: node %q has unknown layer kind %T", m.Name, n.Name, n.Layer)
		}
	}
	return nil
}

// Submodel embeds a whole Model as a composite layer. When the outer model
// is flattened the submodel is expanded in place: its input nodes are bound
// positionally to the submodel node's inputs, and its output nodes feed the
// submodel node's consumers. Paper §4.2 motivates why flattening must
// decompose submodels into leaf layers for both LCP and owner maps.
type Submodel struct{ M *Model }

func (s Submodel) Kind() string { return "submodel" }

// Sequential is a convenience builder for linear stacks of layers.
func Sequential(name string, inputDim int, layers ...Layer) *Model {
	m := New(name)
	cur := m.Input("input", inputDim)
	for i, l := range layers {
		cur = m.Apply(l, fmt.Sprintf("%s_%d", kindOf(l), i), cur)
	}
	m.SetOutputs(cur)
	return m
}

func kindOf(l Layer) string {
	if l == nil {
		return "nil"
	}
	return l.Kind()
}
