package model

import (
	"fmt"

	"repro/internal/graph"
)

// Leaf is one flattened leaf layer: the vertex payload EvoStore stores
// tensors for. Leaves are indexed by graph.VertexID.
type Leaf struct {
	// Name is the hierarchical path of the leaf ("block2/dense_1").
	Name string
	// Layer is the leaf layer definition.
	Layer LeafLayer
	// Specs caches Layer.ParamSpecs().
	Specs []TensorSpec
}

// Flat is the result of flattening a recursive model: the compact leaf-layer
// architecture graph plus, for each vertex, the leaf's parameter specs.
type Flat struct {
	Graph  *graph.Compact
	Leaves []Leaf
}

// site is an intermediate expansion node: one leaf-layer placement after
// all submodels have been expanded in place.
type site struct {
	leaf  LeafLayer
	name  string
	seq   int // creation order during expansion (deterministic)
	preds []*site
	succs []*site
	id    graph.VertexID
	found bool
}

// Flatten expands all nested submodels of m and produces the compact
// leaf-layer graph. Vertex IDs are assigned in breadth-first discovery
// order from the model inputs, which is deterministic: two models built the
// same way up to some structural point assign identical IDs on the shared
// prefix (required by Algorithm 1's shared ID space).
func Flatten(m *Model) (*Flat, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	ex := &expander{}
	if _, err := ex.expand(m, "", nil); err != nil {
		return nil, err
	}

	// Breadth-first ID assignment from the input sites.
	var order []*site
	var queue []*site
	for _, s := range ex.roots {
		s.found = true
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		s.id = graph.VertexID(len(order))
		order = append(order, s)
		for _, t := range s.succs {
			if !t.found {
				t.found = true
				queue = append(queue, t)
			}
		}
	}
	if len(order) != len(ex.sites) {
		return nil, fmt.Errorf("model %q: %d of %d leaf layers unreachable from inputs",
			m.Name, len(ex.sites)-len(order), len(ex.sites))
	}

	b := graph.NewBuilder(len(order))
	flat := &Flat{Leaves: make([]Leaf, len(order))}
	for _, s := range order {
		specs := s.leaf.ParamSpecs()
		b.AddVertex(graph.Vertex{
			ConfigSig:  s.leaf.ConfigSig(),
			Name:       s.name,
			ParamBytes: ParamBytes(s.leaf),
		})
		flat.Leaves[s.id] = Leaf{Name: s.name, Layer: s.leaf, Specs: specs}
	}
	for _, s := range order {
		for _, p := range s.preds {
			b.AddEdge(p.id, s.id)
		}
	}
	flat.Graph = b.Build()
	return flat, nil
}

type expander struct {
	sites []*site
	roots []*site // top-level input sites in declaration order
}

func (ex *expander) newSite(leaf LeafLayer, name string, preds []*site) *site {
	s := &site{leaf: leaf, name: name, seq: len(ex.sites), preds: preds}
	ex.sites = append(ex.sites, s)
	for _, p := range preds {
		p.succs = append(p.succs, s)
	}
	return s
}

// expand walks m's nodes in creation order (a topological order by
// construction of the functional API) and materializes one site per leaf
// layer. bindings, when non-nil, substitutes m's input nodes with the given
// external sites (submodel expansion); when nil, input nodes become Input
// leaf sites (top-level model).
func (ex *expander) expand(m *Model, prefix string, bindings [][]*site) (map[*Node][]*site, error) {
	outs := make(map[*Node][]*site, len(m.nodes))
	inputIdx := 0
	for _, n := range m.nodes {
		name := n.Name
		if prefix != "" {
			name = prefix + "/" + n.Name
		}
		switch l := n.Layer.(type) {
		case Input:
			if bindings != nil {
				if inputIdx >= len(bindings) {
					return nil, fmt.Errorf("model %q: more inputs than bindings", m.Name)
				}
				outs[n] = bindings[inputIdx]
				inputIdx++
				continue
			}
			s := ex.newSite(l, name, nil)
			ex.roots = append(ex.roots, s)
			outs[n] = []*site{s}
		case Submodel:
			subBindings := make([][]*site, len(n.Inputs))
			for i, in := range n.Inputs {
				subBindings[i] = outs[in]
			}
			subOuts, err := ex.expand(l.M, name, subBindings)
			if err != nil {
				return nil, err
			}
			var merged []*site
			for _, o := range l.M.outputs {
				merged = append(merged, subOuts[o]...)
			}
			outs[n] = merged
		case LeafLayer:
			var preds []*site
			for _, in := range n.Inputs {
				preds = append(preds, outs[in]...)
			}
			outs[n] = []*site{ex.newSite(l, name, preds)}
		default:
			return nil, fmt.Errorf("model %q: node %q: unknown layer type %T", m.Name, n.Name, n.Layer)
		}
	}
	return outs, nil
}

// NumLeaves returns the number of leaf layers (vertices).
func (f *Flat) NumLeaves() int { return len(f.Leaves) }

// TotalParamBytes returns the total parameter payload across leaves.
func (f *Flat) TotalParamBytes() int64 { return f.Graph.TotalParamBytes() }
