package model

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/tensor"
)

// WeightSet holds the materialized parameter tensors of a flattened model,
// indexed by vertex ID. Vertices of parameter-free leaves have empty slots.
type WeightSet [][]*tensor.Tensor

// Materialize allocates and deterministically fills all parameter tensors
// of f. Tensors are seeded per (seed, vertex, tensor index) so that two
// materializations with the same seed are bit-identical — this is how tests
// and benchmarks simulate "the same trained weights".
func Materialize(f *Flat, seed uint64) WeightSet {
	ws := make(WeightSet, len(f.Leaves))
	for v := range f.Leaves {
		leaf := &f.Leaves[v]
		if len(leaf.Specs) == 0 {
			continue
		}
		ts := make([]*tensor.Tensor, len(leaf.Specs))
		for i, spec := range leaf.Specs {
			t := tensor.New(leaf.Name+"/"+spec.Name, spec.DType, spec.Shape...)
			t.FillSeeded(seed ^ uint64(v)<<20 ^ uint64(i)<<40 ^ 0xe5f05e1)
			ts[i] = t
		}
		ws[v] = ts
	}
	return ws
}

// Clone deep-copies the weight set.
func (ws WeightSet) Clone() WeightSet {
	out := make(WeightSet, len(ws))
	for v, ts := range ws {
		if ts == nil {
			continue
		}
		cs := make([]*tensor.Tensor, len(ts))
		for i, t := range ts {
			cs[i] = t.Clone()
		}
		out[v] = cs
	}
	return out
}

// SizeBytes returns the total tensor payload in the set.
func (ws WeightSet) SizeBytes() int64 {
	var n int64
	for _, ts := range ws {
		for _, t := range ts {
			n += int64(t.SizeBytes())
		}
	}
	return n
}

// VertexEqual reports whether vertex v's tensors are bit-identical in both
// sets. Missing/empty slots compare equal to each other.
func (ws WeightSet) VertexEqual(o WeightSet, v graph.VertexID) bool {
	a, b := ws.slot(v), o.slot(v)
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			return false
		}
	}
	return true
}

func (ws WeightSet) slot(v graph.VertexID) []*tensor.Tensor {
	if int(v) >= len(ws) {
		return nil
	}
	return ws[v]
}

// Equal reports whether both sets hold identical tensors on all vertices.
func (ws WeightSet) Equal(o WeightSet) bool {
	n := len(ws)
	if len(o) > n {
		n = len(o)
	}
	for v := 0; v < n; v++ {
		if !ws.VertexEqual(o, graph.VertexID(v)) {
			return false
		}
	}
	return true
}

// PerturbVertex simulates a training update on vertex v's tensors.
func (ws WeightSet) PerturbVertex(v graph.VertexID, seed uint64) {
	for i, t := range ws.slot(v) {
		t.Perturb(seed ^ uint64(v)<<16 ^ uint64(i))
	}
}

// EncodeVertex consolidates vertex v's tensors into one segment.
func (ws WeightSet) EncodeVertex(v graph.VertexID) []byte {
	return tensor.EncodeSet(ws.slot(v))
}

// DecodeVertexInto decodes a consolidated segment into vertex v's slot,
// validating against the leaf's specs. The decoded tensors are deep copies
// (they do not alias seg).
func (ws WeightSet) DecodeVertexInto(f *Flat, v graph.VertexID, seg []byte) error {
	ts, err := tensor.DecodeSet(seg)
	if err != nil {
		return fmt.Errorf("model: vertex %d: %w", v, err)
	}
	specs := f.Leaves[v].Specs
	if len(ts) != len(specs) {
		return fmt.Errorf("model: vertex %d: segment has %d tensors, specs want %d", v, len(ts), len(specs))
	}
	out := make([]*tensor.Tensor, len(ts))
	for i, t := range ts {
		if t.DType != specs[i].DType || t.NumElements() != tensor.NumElements(specs[i].Shape) {
			return fmt.Errorf("model: vertex %d tensor %d: got %s, spec %s", v, i, t, specs[i])
		}
		out[i] = t.Clone()
	}
	ws[v] = out
	return nil
}

// Fingerprints returns a per-vertex content hash, or 0 for parameter-free
// vertices. Used for fast modified-tensor detection during diffing.
func (ws WeightSet) Fingerprints() []uint64 {
	fps := make([]uint64, len(ws))
	for v, ts := range ws {
		var fp uint64
		for _, t := range ts {
			fp = fp*0x100000001b3 + t.Fingerprint()
		}
		fps[v] = fp
	}
	return fps
}
