// Package model is a Keras-like layer library: it lets applications build
// deep-learning models as directed acyclic graphs of layers, where layers
// are recursive structures (a layer may be a whole nested submodel). It is
// the substrate the paper consumes through TensorFlow/Keras; EvoStore only
// ever sees the result of Flatten: a compact leaf-layer architecture graph
// plus the leaf layers' parameter tensors.
package model

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"repro/internal/tensor"
)

// TensorSpec describes one parameter tensor of a leaf layer.
type TensorSpec struct {
	Name  string // local name, e.g. "kernel", "bias"
	DType tensor.DType
	Shape []int
}

// SizeBytes returns the payload size the spec implies.
func (s TensorSpec) SizeBytes() int64 {
	return int64(tensor.NumElements(s.Shape)) * int64(s.DType.Size())
}

// Layer is anything that can occupy a node in a model graph. Exactly one of
// the two refinements below is implemented by every layer type.
type Layer interface {
	// Kind returns the layer type name ("dense", "conv2d", "submodel", ...).
	Kind() string
}

// LeafLayer is a layer that holds parameters directly (or none) and cannot
// be decomposed further. Leaf layers are the vertices of compact graphs.
type LeafLayer interface {
	Layer
	// ConfigSig is a hash of the architectural configuration: kind,
	// hyperparameters and parameter shapes — never weights and never the
	// layer's name. Equal sigs ⇒ identical leaf-layer architecture.
	ConfigSig() uint64
	// ParamSpecs lists the layer's parameter tensors in a fixed order.
	ParamSpecs() []TensorSpec
}

// sig hashes a layer kind and its integer hyperparameters.
func sig(kind string, vals ...int64) uint64 {
	h := fnv.New64a()
	h.Write([]byte(kind))
	var buf [8]byte
	for _, v := range vals {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	return h.Sum64()
}

// sigStr folds a string hyperparameter (e.g. activation) into a signature.
func sigStr(base uint64, s string) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], base)
	h.Write(buf[:])
	h.Write([]byte(s))
	return h.Sum64()
}

// ---------------------------------------------------------------------------
// Leaf layers
// ---------------------------------------------------------------------------

// Input marks a model input with a given feature dimension. It has no
// parameters; its config participates in matching so models with different
// input shapes never share a prefix.
type Input struct{ Dim int }

func (l Input) Kind() string             { return "input" }
func (l Input) ConfigSig() uint64        { return sig("input", int64(l.Dim)) }
func (l Input) ParamSpecs() []TensorSpec { return nil }

// Dense is a fully connected layer: kernel [In×Out] (+ bias [Out]).
type Dense struct {
	In, Out    int
	Activation string
	UseBias    bool
}

func (l Dense) Kind() string { return "dense" }
func (l Dense) ConfigSig() uint64 {
	return sigStr(sig("dense", int64(l.In), int64(l.Out), b2i(l.UseBias)), l.Activation)
}
func (l Dense) ParamSpecs() []TensorSpec {
	specs := []TensorSpec{{Name: "kernel", DType: tensor.Float32, Shape: []int{l.In, l.Out}}}
	if l.UseBias {
		specs = append(specs, TensorSpec{Name: "bias", DType: tensor.Float32, Shape: []int{l.Out}})
	}
	return specs
}

// Conv2D is a 2-D convolution: kernel [KH×KW×InCh×OutCh] (+ bias [OutCh]).
type Conv2D struct {
	InCh, OutCh int
	KH, KW      int
	Stride      int
	Activation  string
	UseBias     bool
}

func (l Conv2D) Kind() string { return "conv2d" }
func (l Conv2D) ConfigSig() uint64 {
	return sigStr(sig("conv2d", int64(l.InCh), int64(l.OutCh), int64(l.KH), int64(l.KW),
		int64(l.Stride), b2i(l.UseBias)), l.Activation)
}
func (l Conv2D) ParamSpecs() []TensorSpec {
	specs := []TensorSpec{{Name: "kernel", DType: tensor.Float32,
		Shape: []int{l.KH, l.KW, l.InCh, l.OutCh}}}
	if l.UseBias {
		specs = append(specs, TensorSpec{Name: "bias", DType: tensor.Float32, Shape: []int{l.OutCh}})
	}
	return specs
}

// BatchNorm holds gamma/beta plus running mean/variance over Dim features.
type BatchNorm struct{ Dim int }

func (l BatchNorm) Kind() string      { return "batchnorm" }
func (l BatchNorm) ConfigSig() uint64 { return sig("batchnorm", int64(l.Dim)) }
func (l BatchNorm) ParamSpecs() []TensorSpec {
	return []TensorSpec{
		{Name: "gamma", DType: tensor.Float32, Shape: []int{l.Dim}},
		{Name: "beta", DType: tensor.Float32, Shape: []int{l.Dim}},
		{Name: "moving_mean", DType: tensor.Float32, Shape: []int{l.Dim}},
		{Name: "moving_variance", DType: tensor.Float32, Shape: []int{l.Dim}},
	}
}

// LayerNorm holds gamma/beta over Dim features.
type LayerNorm struct{ Dim int }

func (l LayerNorm) Kind() string      { return "layernorm" }
func (l LayerNorm) ConfigSig() uint64 { return sig("layernorm", int64(l.Dim)) }
func (l LayerNorm) ParamSpecs() []TensorSpec {
	return []TensorSpec{
		{Name: "gamma", DType: tensor.Float32, Shape: []int{l.Dim}},
		{Name: "beta", DType: tensor.Float32, Shape: []int{l.Dim}},
	}
}

// Embedding maps a vocabulary to dense vectors: table [Vocab×Dim].
type Embedding struct{ Vocab, Dim int }

func (l Embedding) Kind() string      { return "embedding" }
func (l Embedding) ConfigSig() uint64 { return sig("embedding", int64(l.Vocab), int64(l.Dim)) }
func (l Embedding) ParamSpecs() []TensorSpec {
	return []TensorSpec{{Name: "embeddings", DType: tensor.Float32, Shape: []int{l.Vocab, l.Dim}}}
}

// MultiHeadAttention holds fused QKV and output projections over Dim.
type MultiHeadAttention struct{ Dim, Heads int }

func (l MultiHeadAttention) Kind() string { return "mha" }
func (l MultiHeadAttention) ConfigSig() uint64 {
	return sig("mha", int64(l.Dim), int64(l.Heads))
}
func (l MultiHeadAttention) ParamSpecs() []TensorSpec {
	return []TensorSpec{
		{Name: "qkv_kernel", DType: tensor.Float32, Shape: []int{l.Dim, 3 * l.Dim}},
		{Name: "qkv_bias", DType: tensor.Float32, Shape: []int{3 * l.Dim}},
		{Name: "out_kernel", DType: tensor.Float32, Shape: []int{l.Dim, l.Dim}},
		{Name: "out_bias", DType: tensor.Float32, Shape: []int{l.Dim}},
	}
}

// Activation applies a parameter-free nonlinearity.
type Activation struct{ Fn string }

func (l Activation) Kind() string             { return "activation" }
func (l Activation) ConfigSig() uint64        { return sigStr(sig("activation"), l.Fn) }
func (l Activation) ParamSpecs() []TensorSpec { return nil }

// Dropout is parameter-free; the rate is architectural configuration.
type Dropout struct{ Rate100 int } // rate in percent to keep sigs integral

func (l Dropout) Kind() string             { return "dropout" }
func (l Dropout) ConfigSig() uint64        { return sig("dropout", int64(l.Rate100)) }
func (l Dropout) ParamSpecs() []TensorSpec { return nil }

// MaxPool2D / AvgPool2D are parameter-free spatial reductions.
type MaxPool2D struct{ K int }

func (l MaxPool2D) Kind() string             { return "maxpool2d" }
func (l MaxPool2D) ConfigSig() uint64        { return sig("maxpool2d", int64(l.K)) }
func (l MaxPool2D) ParamSpecs() []TensorSpec { return nil }

type AvgPool2D struct{ K int }

func (l AvgPool2D) Kind() string             { return "avgpool2d" }
func (l AvgPool2D) ConfigSig() uint64        { return sig("avgpool2d", int64(l.K)) }
func (l AvgPool2D) ParamSpecs() []TensorSpec { return nil }

// Flatten reshapes to rank 1; parameter-free.
type FlattenOp struct{}

func (l FlattenOp) Kind() string             { return "flatten" }
func (l FlattenOp) ConfigSig() uint64        { return sig("flatten") }
func (l FlattenOp) ParamSpecs() []TensorSpec { return nil }

// Add merges branches by elementwise addition (fork-join pattern).
type Add struct{}

func (l Add) Kind() string             { return "add" }
func (l Add) ConfigSig() uint64        { return sig("add") }
func (l Add) ParamSpecs() []TensorSpec { return nil }

// Concat merges branches by concatenation along the feature axis.
type Concat struct{}

func (l Concat) Kind() string             { return "concat" }
func (l Concat) ConfigSig() uint64        { return sig("concat") }
func (l Concat) ParamSpecs() []TensorSpec { return nil }

// Identity passes its input through; used by NAS spaces as a "skip" op.
type Identity struct{}

func (l Identity) Kind() string             { return "identity" }
func (l Identity) ConfigSig() uint64        { return sig("identity") }
func (l Identity) ParamSpecs() []TensorSpec { return nil }

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Compile-time interface checks for every leaf layer.
var (
	_ LeafLayer = Input{}
	_ LeafLayer = Dense{}
	_ LeafLayer = Conv2D{}
	_ LeafLayer = BatchNorm{}
	_ LeafLayer = LayerNorm{}
	_ LeafLayer = Embedding{}
	_ LeafLayer = MultiHeadAttention{}
	_ LeafLayer = Activation{}
	_ LeafLayer = Dropout{}
	_ LeafLayer = MaxPool2D{}
	_ LeafLayer = AvgPool2D{}
	_ LeafLayer = FlattenOp{}
	_ LeafLayer = Add{}
	_ LeafLayer = Concat{}
	_ LeafLayer = Identity{}
)

// ParamBytes returns the total parameter payload of a leaf layer.
func ParamBytes(l LeafLayer) int64 {
	var n int64
	for _, s := range l.ParamSpecs() {
		n += s.SizeBytes()
	}
	return n
}

// String renders a spec compactly for diagnostics.
func (s TensorSpec) String() string {
	return fmt.Sprintf("%s:%s%v", s.Name, s.DType, s.Shape)
}
