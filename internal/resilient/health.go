package resilient

import (
	"math"
	"sort"
	"sync"
	"time"
)

// This file is the gray-failure half of the package: the breaker sees a
// provider as up or down, but a provider can be alive, answering, and 20×
// slower than its peers (Huang et al., "Gray Failure", HotOS 2017). Each
// Conn therefore tracks its observed call latencies and error rate and
// folds them — together with the breaker state and the fleet's median
// latency — into a continuous health score in [0,1] that replica
// selection and hedging can rank on, instead of the breaker's binary
// Healthy().

const (
	// latWindow is how many recent latency samples a connection keeps for
	// percentile queries. Small and fixed: percentiles answer "how is this
	// provider doing right now", not "over its lifetime".
	latWindow = 64
	// errAlpha is the EWMA weight of one attempt's failure indicator; at
	// 1/16 a provider needs a sustained error run to look unhealthy and
	// ~16 clean calls to look healthy again.
	errAlpha = 1.0 / 16
	// errHalfLife time-decays the error EWMA between observations: a
	// provider demoted by an error burst stops receiving traffic (ranking
	// routes around it), so without time decay nothing would ever
	// rehabilitate it on a read-only workload.
	errHalfLife = 10 * time.Second
	// grayLatencyFactor and grayLatencyMargin gate the latency penalty:
	// a member is penalized only when its p50 exceeds both
	// grayLatencyFactor times the fleet median and the median plus the
	// absolute margin. Gray failure means an order of magnitude, not
	// scheduler noise — without the gate, microsecond-scale in-proc
	// deployments would demote healthy replicas on jitter.
	grayLatencyFactor = 3
	grayLatencyMargin = 250 * time.Microsecond
)

// health is one connection's latency/error observation state.
type health struct {
	mu       sync.Mutex
	ring     [latWindow]time.Duration
	n        int // filled entries, <= latWindow
	next     int // ring write cursor
	errRate  float64
	errTouch time.Time       // last errRate update, for time decay
	sorted   []time.Duration // cached sort of the ring; nil when dirty
}

// decayLocked folds the time elapsed since the last update into errRate.
func (h *health) decayLocked(now time.Time) {
	if !h.errTouch.IsZero() {
		if dt := now.Sub(h.errTouch); dt > 0 {
			h.errRate *= math.Exp2(-float64(dt) / float64(errHalfLife))
		}
	}
	h.errTouch = now
}

// observe records one attempt at time now. Latency is recorded only for
// completed round trips (ok with d > 0) so timed-out attempts can't drag
// the percentile toward whatever deadline cut them off; the error EWMA
// sees every attempt.
func (h *health) observe(now time.Time, d time.Duration, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.decayLocked(now)
	fail := 0.0
	if !ok {
		fail = 1
	}
	h.errRate = h.errRate*(1-errAlpha) + errAlpha*fail
	if ok && d > 0 {
		h.ring[h.next] = d
		h.next = (h.next + 1) % latWindow
		if h.n < latWindow {
			h.n++
		}
		h.sorted = nil
	}
}

// percentile returns the p-quantile (p in [0,1]) of the recorded latency
// window, or 0 when no samples exist yet.
func (h *health) percentile(p float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.n == 0 {
		return 0
	}
	if h.sorted == nil {
		h.sorted = append(h.sorted[:0], h.ring[:h.n]...)
		sort.Slice(h.sorted, func(i, j int) bool { return h.sorted[i] < h.sorted[j] })
	}
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	idx := int(p * float64(h.n-1))
	return h.sorted[idx]
}

// errorRate returns the EWMA failure rate in [0,1] as of time now,
// applying time decay without mutating state.
func (h *health) errorRate(now time.Time) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.errTouch.IsZero() {
		if dt := now.Sub(h.errTouch); dt > 0 {
			return h.errRate * math.Exp2(-float64(dt)/float64(errHalfLife))
		}
	}
	return h.errRate
}

// fleet is the shared view WrapAll gives its connections so each can
// compare its own latency against the deployment's median. The member
// slice is fixed at construction; only the members' internal state
// changes, under their own locks.
type fleet struct {
	conns []*Conn
}

// medianLatency returns the median of the members' p50 latencies,
// counting only members with samples; 0 when none have any.
func (f *fleet) medianLatency() time.Duration {
	if f == nil {
		return 0
	}
	meds := make([]time.Duration, 0, len(f.conns))
	for _, c := range f.conns {
		if m := c.health.percentile(0.50); m > 0 {
			meds = append(meds, m)
		}
	}
	if len(meds) == 0 {
		return 0
	}
	sort.Slice(meds, func(i, j int) bool { return meds[i] < meds[j] })
	return meds[len(meds)/2]
}

// Score folds breaker state, recent error rate, and latency relative to
// the fleet median into one continuous health score in [0,1]:
//
//	1.0  closed breaker, no recent errors, near the fleet median
//	↓    scaled down by the (time-decaying) error EWMA and, once a
//	     member's p50 clears the gray gate (grayLatencyFactor times the
//	     fleet median plus grayLatencyMargin), by median/own-p50 — a 20×
//	     outlier scores ~0.05 of its error-free base
//	0.5× base while half-open (one unproven probe), 0.25× while open past
//	     cooldown (a probe would be admitted), hard 0 while open and shedding
//
// A connection with no samples and a closed breaker scores 1: unknown is
// not unhealthy. Replica selection ranks healthy replicas by this score
// and hedging scales its delay with it.
func (c *Conn) Score() float64 {
	now := c.opts.Clock.Now()
	var base float64
	switch state, admitting := c.breaker.snapshot(now); state {
	case stateClosed:
		base = 1
	case stateHalfOpen:
		base = 0.5
	default: // open
		if !admitting {
			return 0
		}
		base = 0.25
	}
	s := base * (1 - c.health.errorRate(now))
	if own := c.health.percentile(0.50); own > 0 {
		med := c.fleet.medianLatency()
		if med > 0 && own > grayLatencyFactor*med && own-med > grayLatencyMargin {
			s *= float64(med) / float64(own)
		}
	}
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// LatencyPercentile returns the p-quantile of this connection's recent
// completed-call latencies (0 when no samples exist yet). Hedged reads
// derive their hedge delay from the p95.
func (c *Conn) LatencyPercentile(p float64) time.Duration {
	return c.health.percentile(p)
}

// ErrorRate returns the connection's EWMA attempt-failure rate in [0,1],
// time-decayed to the present.
func (c *Conn) ErrorRate() float64 { return c.health.errorRate(c.opts.Clock.Now()) }

// ScoreReporter is implemented by connections that can report a
// continuous health score in [0,1]. The client's replica ranking and
// hedging type-assert against it; connections without the method are
// treated as score 1 (fully healthy).
type ScoreReporter interface {
	Score() float64
}

// LatencyReporter is implemented by connections that can report observed
// latency quantiles; hedged reads use it to pick an adaptive hedge delay.
type LatencyReporter interface {
	LatencyPercentile(p float64) time.Duration
}

var (
	_ ScoreReporter   = (*Conn)(nil)
	_ LatencyReporter = (*Conn)(nil)
)

// attemptDeadline picks the per-attempt deadline for a call whose caller
// context carries none: the observed AdaptiveQuantile latency times
// AdaptiveMult, clamped to [AdaptiveFloor, DefaultTimeout]. Until samples
// exist it falls back to DefaultTimeout — adaptive deadlines tighten an
// existing bound, they never loosen it.
func (c *Conn) attemptDeadline() time.Duration {
	d := c.opts.DefaultTimeout
	if d < 0 {
		d = 0
	}
	if !c.opts.AdaptiveDeadline {
		return d
	}
	p := c.health.percentile(c.opts.AdaptiveQuantile)
	if p <= 0 {
		return d
	}
	ad := time.Duration(float64(p) * c.opts.AdaptiveMult)
	if ad < c.opts.AdaptiveFloor {
		ad = c.opts.AdaptiveFloor
	}
	if d > 0 && ad > d {
		return d
	}
	c.adaptive.Inc()
	return ad
}
