package resilient

import (
	"sync"
	"time"
)

// breaker is a per-provider circuit breaker over transport-level failures.
//
//	closed --(threshold consecutive failures)--> open
//	open   --(cooldown elapsed)--> half-open (one probe admitted)
//	half-open --(probe succeeds)--> closed
//	half-open --(probe fails)-----> open (cooldown restarts)
//
// Only transient (transport) failures count: a provider that answers with
// an application error is alive. A disabled breaker (threshold < 0) admits
// everything.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    int // stateClosed, stateOpen, stateHalfOpen
	fails    int // consecutive transient failures while closed
	openedAt time.Time
	probing  bool // a half-open probe is in flight
}

const (
	stateClosed = iota
	stateOpen
	stateHalfOpen
)

// admit decides whether a call may proceed at time now, returning the
// state it was admitted under.
func (b *breaker) admit(now time.Time) (state int, ok bool) {
	if b.threshold < 0 {
		return stateClosed, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return stateClosed, true
	case stateOpen:
		if now.Sub(b.openedAt) < b.cooldown {
			return stateOpen, false
		}
		b.state = stateHalfOpen
		b.probing = true
		return stateHalfOpen, true
	default: // half-open: one probe at a time
		if b.probing {
			return stateHalfOpen, false
		}
		b.probing = true
		return stateHalfOpen, true
	}
}

// onSuccess records a successful (or authoritatively answered) call; it
// reports whether this closed a previously open breaker.
func (b *breaker) onSuccess() (reclosed bool) {
	if b.threshold < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	reclosed = b.state != stateClosed
	b.state = stateClosed
	b.fails = 0
	b.probing = false
	return reclosed
}

// onAbandoned records a call whose outcome says nothing about the
// provider (the caller cancelled it mid-flight, e.g. a hedge winner
// cancelling the losing leg). It must not resolve the breaker either way,
// but it has to release a half-open probe slot — leaving probing set for
// a call that will never report back would wedge the breaker, shedding
// every future call against the provider.
func (b *breaker) onAbandoned() {
	if b.threshold < 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == stateHalfOpen {
		b.probing = false
	}
}

// onFailure records a transient failure at time now; it reports whether
// this opened the breaker.
func (b *breaker) onFailure(now time.Time) (opened bool) {
	if b.threshold < 0 {
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.state = stateOpen
			b.openedAt = now
			return true
		}
	case stateHalfOpen:
		// The probe failed: back to a full cooldown.
		b.state = stateOpen
		b.openedAt = now
		b.probing = false
		return true
	}
	return false
}

// healthy reports whether a call placed at time now would be admitted:
// closed breakers always admit; open breakers admit once the cooldown has
// elapsed (the call would run as the half-open probe); a half-open breaker
// with a probe already in flight would shed.
func (b *breaker) healthy(now time.Time) bool {
	if b.threshold < 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateOpen:
		return now.Sub(b.openedAt) >= b.cooldown
	case stateHalfOpen:
		return !b.probing
	default:
		return true
	}
}

// snapshot reports the current state and whether a call placed at time
// now would be admitted, without mutating anything (unlike admit, which
// flips an elapsed-cooldown open breaker to half-open). Health scoring
// reads this.
func (b *breaker) snapshot(now time.Time) (state int, admitting bool) {
	if b.threshold < 0 {
		return stateClosed, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateOpen:
		return stateOpen, now.Sub(b.openedAt) >= b.cooldown
	case stateHalfOpen:
		return stateHalfOpen, !b.probing
	default:
		return stateClosed, true
	}
}

func (b *breaker) stateName() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}
