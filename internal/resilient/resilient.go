// Package resilient hardens the EvoStore RPC path against a misbehaving
// fabric. The paper's evaluation assumes a healthy Slingshot network; a
// production deployment does not get that luxury, and the client's Load
// fans one model read out across every provider holding an owner group —
// one slow or dead provider stalls the whole read. This package wraps any
// rpc.Conn with three layers of protection:
//
//   - Per-call default deadlines: a call arriving without a context
//     deadline gets a bounded one per attempt, so a dead socket fails fast
//     instead of hanging a fan-out.
//   - Bounded retries with exponential backoff + jitter, attempted only
//     for errors rpc.IsTransient classifies as retryable AND operations
//     the Retryable policy admits. proto.Retryable admits idempotent ops
//     plus the mutating ops that carry a request ID for provider-side
//     dedup (IncRef/DecRef/Retire/StoreModel), so a retry can never
//     double-execute a refcount change.
//   - A per-provider circuit breaker: after Threshold consecutive
//     transport failures the breaker opens and calls are shed immediately
//     with rpc.ErrUnavailable; after Cooldown one probe call is let
//     through (half-open) and its outcome closes or re-opens the breaker.
//   - Throttle-aware pacing: a front-door admission refusal carrying a
//     retry-after hint (see the frontdoor package) is retried after the
//     server-chosen pause instead of exponential backoff, and counts as a
//     breaker success — a provider refusing authoritatively is healthy,
//     and opening the breaker on throttling would turn pacing into an
//     outage.
//
// Paper counterpart: none — this is the productionization layer the
// ROADMAP's north star asks for on top of the paper's Mercury/Thallium
// stack. Retry/backoff/breaker behaviour follows standard datacenter RPC
// practice (e.g. gRPC retry policy, Hystrix-style breakers).
//
// Contracts: Conn is safe for concurrent use. Time is injected via Clock
// so tests can drive backoff and cooldown deterministically. All state
// transitions and retries are counted in a metrics.Registry.
package resilient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/frontdoor"
	"repro/internal/metrics"
	"repro/internal/rpc"
)

// Clock abstracts time for deterministic tests.
type Clock interface {
	Now() time.Time
	// Sleep blocks for d or until ctx is done, returning ctx.Err() in the
	// latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

type realClock struct{}

func (realClock) Now() time.Time { return time.Now() }
func (realClock) Sleep(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Options tunes the middleware. The zero value gets sane defaults.
type Options struct {
	// DefaultTimeout is the per-attempt deadline applied when the caller's
	// context has none. Default 10s; negative disables.
	DefaultTimeout time.Duration
	// MaxAttempts is the total number of tries, including the first.
	// Default 3; values < 1 mean 1 (no retries).
	MaxAttempts int
	// BackoffBase is the sleep before the first retry; each further retry
	// doubles it, capped at BackoffMax. Defaults 5ms / 500ms.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Jitter spreads each backoff uniformly over [1-Jitter, 1+Jitter].
	// Default 0.2; negative disables jitter (deterministic backoff).
	Jitter float64
	// Retryable decides per RPC name whether a transient failure may be
	// retried. nil admits every name (use proto.Retryable for EvoStore's
	// idempotency-aware policy).
	Retryable func(name string) bool
	// Threshold is the number of consecutive transient failures that opens
	// the circuit breaker. Default 5; negative disables the breaker.
	Threshold int
	// Cooldown is how long an open breaker sheds calls before letting one
	// probe through. Default 1s.
	Cooldown time.Duration
	// Registry counts retries and breaker transitions; nil uses
	// metrics.Default.
	Registry *metrics.Registry
	// Clock and Seed inject time and jitter randomness for tests.
	Clock Clock
	Seed  int64
	// AdaptiveDeadline derives the per-attempt deadline from this
	// connection's observed latency distribution instead of the static
	// DefaultTimeout: quantile AdaptiveQuantile times AdaptiveMult,
	// clamped to [AdaptiveFloor, DefaultTimeout]. A gray-slow provider
	// then times out at a few multiples of its own recent tail instead
	// of parking callers on a 10s fabric-wide constant. Off by default.
	AdaptiveDeadline bool
	// AdaptiveQuantile is the observed quantile the deadline is derived
	// from. Default 0.99.
	AdaptiveQuantile float64
	// AdaptiveMult scales the observed quantile into a deadline.
	// Default 4.
	AdaptiveMult float64
	// AdaptiveFloor is the minimum adaptive deadline, so microsecond
	// in-proc latencies can't produce unserviceable deadlines.
	// Default 25ms.
	AdaptiveFloor time.Duration
}

func (o Options) withDefaults() Options {
	if o.DefaultTimeout == 0 {
		o.DefaultTimeout = 10 * time.Second
	}
	if o.MaxAttempts < 1 {
		o.MaxAttempts = 3
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 5 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 500 * time.Millisecond
	}
	if o.Jitter == 0 {
		o.Jitter = 0.2
	}
	if o.Threshold == 0 {
		o.Threshold = 5
	}
	if o.Cooldown <= 0 {
		o.Cooldown = time.Second
	}
	if o.Registry == nil {
		o.Registry = metrics.Default
	}
	if o.Clock == nil {
		o.Clock = realClock{}
	}
	if o.AdaptiveQuantile <= 0 || o.AdaptiveQuantile > 1 {
		o.AdaptiveQuantile = 0.99
	}
	if o.AdaptiveMult <= 0 {
		o.AdaptiveMult = 4
	}
	if o.AdaptiveFloor <= 0 {
		o.AdaptiveFloor = 25 * time.Millisecond
	}
	return o
}

// Conn is an rpc.Conn hardened with deadlines, retries and a circuit
// breaker. Wrap one around each provider connection.
type Conn struct {
	inner rpc.Conn
	opts  Options

	mu      sync.Mutex
	rng     *rand.Rand
	breaker breaker

	health health
	fleet  *fleet // shared by WrapAll siblings; nil for a lone Wrap

	listenMu sync.Mutex
	listener func(addr, state string)

	retries, shed            *metrics.Counter
	opened, halfOpen, closed *metrics.Counter
	throttled, adaptive      *metrics.Counter
}

// SetStateListener installs fn to be called — synchronously, off the
// breaker lock — whenever the breaker transitions to "open" or back to
// "closed". The anti-entropy repairer hooks this to wake immediately when
// a provider recovers from an outage, instead of waiting out its sweep
// interval. One listener per Conn; a later call replaces the earlier one.
func (c *Conn) SetStateListener(fn func(addr, state string)) {
	c.listenMu.Lock()
	c.listener = fn
	c.listenMu.Unlock()
}

func (c *Conn) notifyState(state string) {
	c.listenMu.Lock()
	fn := c.listener
	c.listenMu.Unlock()
	if fn != nil {
		fn(c.inner.Addr(), state)
	}
}

// Wrap hardens conn with o. Each wrapped connection has its own breaker,
// matching the per-provider failure domain of the deployment.
func Wrap(conn rpc.Conn, o Options) *Conn {
	o = o.withDefaults()
	reg := o.Registry
	return &Conn{
		inner:     conn,
		opts:      o,
		rng:       rand.New(rand.NewSource(o.Seed)),
		breaker:   breaker{threshold: o.Threshold, cooldown: o.Cooldown},
		retries:   reg.Counter("rpc.retries"),
		shed:      reg.Counter("rpc.breaker_shed"),
		opened:    reg.Counter("rpc.breaker_open"),
		halfOpen:  reg.Counter("rpc.breaker_half_open"),
		closed:    reg.Counter("rpc.breaker_close"),
		throttled: reg.Counter("rpc.throttle_backoff"),
		adaptive:  reg.Counter("rpc.adaptive_deadline"),
	}
}

// WrapAll hardens every connection of a deployment with the same options
// (but independent breakers and RNG streams, offset by index so provider
// schedules differ). The wrapped connections share a fleet view, so each
// member's Score() can compare its latency against the fleet median.
func WrapAll(conns []rpc.Conn, o Options) []rpc.Conn {
	fl := &fleet{conns: make([]*Conn, len(conns))}
	out := make([]rpc.Conn, len(conns))
	for i, c := range conns {
		oi := o
		oi.Seed = o.Seed + int64(i)
		rc := Wrap(c, oi)
		rc.fleet = fl
		fl.conns[i] = rc
		out[i] = rc
	}
	return out
}

// backoff returns the jittered sleep before retry number retry (0-based).
func (c *Conn) backoff(retry int) time.Duration {
	d := c.opts.BackoffBase << uint(retry)
	if d > c.opts.BackoffMax || d <= 0 { // <=0 catches shift overflow
		d = c.opts.BackoffMax
	}
	j := c.opts.Jitter
	if j <= 0 {
		return d
	}
	c.mu.Lock()
	f := 1 - j + 2*j*c.rng.Float64()
	c.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// Call implements rpc.Conn: breaker check, per-attempt deadline, bounded
// retries with backoff on transient errors of retryable operations. A
// front-door throttle refusal (frontdoor.RetryAfterFromError) is treated as
// pacing, not failure: the server-chosen retry-after replaces the
// exponential backoff and the breaker records a success, since an
// authoritative refusal proves the provider healthy.
func (c *Conn) Call(ctx context.Context, name string, req rpc.Message) (rpc.Message, error) {
	retryable := c.opts.Retryable == nil || c.opts.Retryable(name)
	var lastErr error
	// throttleWait, when set, replaces the next retry's exponential backoff
	// with the server-directed pause from the previous attempt's refusal.
	var throttleWait time.Duration
	for attempt := 0; attempt < c.opts.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Inc()
			d := c.backoff(attempt - 1)
			if throttleWait > 0 {
				d, throttleWait = throttleWait, 0
			}
			if err := c.opts.Clock.Sleep(ctx, d); err != nil {
				return rpc.Message{}, err
			}
		}
		state, admitted := c.breaker.admit(c.opts.Clock.Now())
		if !admitted {
			c.shed.Inc()
			// Shedding is not a provider failure; return without counting
			// it against the breaker, and without burning retries waiting
			// out a cooldown the backoff cannot outlast. Keep the last
			// transport error visible when this call's own failures
			// tripped the breaker mid-retry.
			if lastErr != nil {
				return rpc.Message{}, fmt.Errorf("%w: %s (last error: %v)", rpc.ErrUnavailable, c.inner.Addr(), lastErr)
			}
			return rpc.Message{}, fmt.Errorf("%w: %s", rpc.ErrUnavailable, c.inner.Addr())
		}
		if state == stateHalfOpen {
			c.halfOpen.Inc()
		}

		resp, err := c.attempt(ctx, name, req)
		if ra, ok := frontdoor.RetryAfterFromError(err); ok {
			// Throttled: the provider is reachable and answering, so the
			// breaker must not accumulate failures (an open breaker would
			// turn pacing into an outage). Honor the server's retry-after
			// (clamped) instead of exponential backoff.
			if c.breaker.onSuccess() {
				c.closed.Inc()
				c.notifyState("closed")
			}
			c.throttled.Inc()
			lastErr = err
			if !retryable {
				break
			}
			throttleWait = clampRetryAfter(ra)
			continue
		}
		if err == nil || !rpc.IsTransient(err) {
			if err != nil && errors.Is(err, context.Canceled) {
				// The caller gave up mid-flight (a hedge winner cancelling
				// its losers, a user abandoning a request). That says
				// nothing about the provider, so it must neither reset the
				// breaker's failure streak nor count against it — but if
				// this call was the half-open probe, the slot must be
				// released or the breaker wedges shut.
				c.breaker.onAbandoned()
				return resp, err
			}
			// Success, or the handler answered authoritatively: the
			// provider is reachable either way.
			if c.breaker.onSuccess() {
				c.closed.Inc()
				c.notifyState("closed")
			}
			return resp, err
		}
		if c.breaker.onFailure(c.opts.Clock.Now()) {
			c.opened.Inc()
			c.notifyState("open")
		}
		lastErr = err
		if !retryable {
			break
		}
	}
	return rpc.Message{}, lastErr
}

// clampRetryAfter bounds a server-provided retry-after to a sane pause: a
// floor keeps a zero hint from becoming a busy-loop, a ceiling keeps one
// deep-in-debt bucket from parking a call for its entire refill window.
func clampRetryAfter(d time.Duration) time.Duration {
	const floor, ceil = time.Millisecond, 5 * time.Second
	if d < floor {
		return floor
	}
	if d > ceil {
		return ceil
	}
	return d
}

// attempt runs one try under the per-attempt deadline (static default or
// adaptive, see attemptDeadline) and feeds its outcome into the
// connection's health observations: every attempt updates the error EWMA,
// completed round trips (success or authoritative answer) update the
// latency window. Caller-cancelled attempts record nothing — they carry
// no information about the provider.
func (c *Conn) attempt(ctx context.Context, name string, req rpc.Message) (rpc.Message, error) {
	if _, has := ctx.Deadline(); !has {
		if d := c.attemptDeadline(); d > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
	}
	start := c.opts.Clock.Now()
	resp, err := c.inner.Call(ctx, name, req)
	now := c.opts.Clock.Now()
	if err != nil && errors.Is(err, context.Canceled) {
		// Cancelled by the caller: the round trip never finished, so the
		// elapsed time measures the caller's patience, not the provider.
		// Recording it would pollute a gray-slow provider's latency window
		// with fast-looking samples (every hedge that wins against it
		// cancels a leg here) and mask exactly the slowness hedging is
		// meant to expose.
		return resp, err
	}
	completed := err == nil || !rpc.IsTransient(err)
	c.health.observe(now, now.Sub(start), completed)
	return resp, err
}

// Addr implements rpc.Conn.
func (c *Conn) Addr() string { return c.inner.Addr() }

// Close implements rpc.Conn.
func (c *Conn) Close() error { return c.inner.Close() }

// BreakerState reports the current breaker state (for tests and
// introspection): "closed", "open" or "half-open".
func (c *Conn) BreakerState() string { return c.breaker.stateName() }

// Healthy reports whether the breaker would admit a call right now without
// shedding it: true while closed or once an open breaker's cooldown has
// elapsed (a probe would be admitted). Replica selection uses this to skip
// a partitioned provider instead of waiting out its open breaker.
func (c *Conn) Healthy() bool { return c.breaker.healthy(c.opts.Clock.Now()) }

// HealthReporter is implemented by connections that can report whether a
// call placed now would be admitted rather than shed. The client's replica
// selection type-asserts against it; connections without the method are
// assumed healthy.
type HealthReporter interface {
	Healthy() bool
}

var _ HealthReporter = (*Conn)(nil)

var _ rpc.Conn = (*Conn)(nil)
