package resilient

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/metrics"
	"repro/internal/rpc"
)

// fakeClock records sleeps and advances virtual time instantly.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	sleeps []time.Duration
}

func newFakeClock() *fakeClock { return &fakeClock{now: time.Unix(1000, 0)} }

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	c.mu.Lock()
	c.sleeps = append(c.sleeps, d)
	c.now = c.now.Add(d)
	c.mu.Unlock()
	return nil
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// scriptConn fails with the scripted errors in order, then succeeds.
type scriptConn struct {
	mu    sync.Mutex
	errs  []error
	calls int
	// sawDeadline records whether each attempt's ctx carried a deadline.
	sawDeadline []bool
}

func (c *scriptConn) Call(ctx context.Context, name string, req rpc.Message) (rpc.Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, has := ctx.Deadline()
	c.sawDeadline = append(c.sawDeadline, has)
	i := c.calls
	c.calls++
	if i < len(c.errs) && c.errs[i] != nil {
		return rpc.Message{}, c.errs[i]
	}
	return rpc.Message{Meta: []byte("ok")}, nil
}

func (c *scriptConn) Addr() string { return "script" }
func (c *scriptConn) Close() error { return nil }

func (c *scriptConn) callCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

var errNet = errors.New("connection reset") // unclassified → transient

func opts(clk Clock) Options {
	return Options{
		MaxAttempts: 3,
		BackoffBase: 10 * time.Millisecond,
		BackoffMax:  80 * time.Millisecond,
		Jitter:      -1, // deterministic
		Threshold:   5,
		Cooldown:    time.Second,
		Registry:    metrics.NewRegistry(),
		Clock:       clk,
	}
}

func TestBackoffTiming(t *testing.T) {
	cases := []struct {
		name     string
		attempts int
		base     time.Duration
		max      time.Duration
		fails    int
		want     []time.Duration
	}{
		{"doubling", 4, 10 * time.Millisecond, time.Second, 3,
			[]time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond}},
		{"capped", 5, 10 * time.Millisecond, 25 * time.Millisecond, 4,
			[]time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 25 * time.Millisecond, 25 * time.Millisecond}},
		{"no retries", 1, 10 * time.Millisecond, time.Second, 0, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			clk := newFakeClock()
			o := opts(clk)
			o.MaxAttempts = tc.attempts
			o.BackoffBase = tc.base
			o.BackoffMax = tc.max
			errs := make([]error, tc.fails)
			for i := range errs {
				errs[i] = errNet
			}
			conn := &scriptConn{errs: errs}
			c := Wrap(conn, o)
			if _, err := c.Call(context.Background(), "x", rpc.Message{}); err != nil {
				t.Fatalf("call failed despite %d attempts for %d failures: %v", tc.attempts, tc.fails, err)
			}
			if len(clk.sleeps) != len(tc.want) {
				t.Fatalf("sleeps = %v, want %v", clk.sleeps, tc.want)
			}
			for i, d := range tc.want {
				if clk.sleeps[i] != d {
					t.Errorf("sleep %d = %v, want %v", i, clk.sleeps[i], d)
				}
			}
		})
	}
}

func TestJitterBounds(t *testing.T) {
	clk := newFakeClock()
	o := opts(clk)
	o.Jitter = 0.5
	o.MaxAttempts = 2
	conn := &scriptConn{errs: []error{errNet}}
	c := Wrap(conn, o)
	if _, err := c.Call(context.Background(), "x", rpc.Message{}); err != nil {
		t.Fatal(err)
	}
	if len(clk.sleeps) != 1 {
		t.Fatalf("sleeps = %v", clk.sleeps)
	}
	lo, hi := 5*time.Millisecond, 15*time.Millisecond
	if clk.sleeps[0] < lo || clk.sleeps[0] > hi {
		t.Errorf("jittered sleep %v outside [%v, %v]", clk.sleeps[0], lo, hi)
	}
}

func TestPermanentErrorNotRetried(t *testing.T) {
	clk := newFakeClock()
	// A remote handler error is permanent: the provider answered.
	remoteErr := func() error {
		srv := rpc.NewServer()
		srv.Register("boom", func(context.Context, rpc.Message) (rpc.Message, error) {
			return rpc.Message{}, errors.New("boom")
		})
		n := rpc.NewInprocNet()
		n.Listen("a", srv)
		c, _ := n.Dial("a")
		_, err := c.Call(context.Background(), "boom", rpc.Message{})
		return err
	}()
	if !rpc.IsRemote(remoteErr) {
		t.Fatal("test setup: expected a remote error")
	}
	conn := &scriptConn{errs: []error{remoteErr, remoteErr, remoteErr}}
	c := Wrap(conn, opts(clk))
	_, err := c.Call(context.Background(), "x", rpc.Message{})
	if err == nil || !rpc.IsRemote(err) {
		t.Fatalf("err = %v", err)
	}
	if n := conn.callCount(); n != 1 {
		t.Errorf("permanent error retried: %d calls", n)
	}
}

func TestNonRetryablePolicy(t *testing.T) {
	clk := newFakeClock()
	o := opts(clk)
	o.Retryable = func(name string) bool { return name != "no-retry" }
	conn := &scriptConn{errs: []error{errNet, errNet}}
	c := Wrap(conn, o)
	if _, err := c.Call(context.Background(), "no-retry", rpc.Message{}); err == nil {
		t.Fatal("expected failure")
	}
	if n := conn.callCount(); n != 1 {
		t.Errorf("non-retryable op retried: %d calls", n)
	}
}

func TestDefaultDeadlineApplied(t *testing.T) {
	clk := newFakeClock()
	o := opts(clk)
	o.DefaultTimeout = time.Second
	conn := &scriptConn{}
	c := Wrap(conn, o)
	c.Call(context.Background(), "x", rpc.Message{})
	if len(conn.sawDeadline) != 1 || !conn.sawDeadline[0] {
		t.Error("default deadline not applied to a deadline-less context")
	}
	// A caller deadline is respected, not replaced.
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	c.Call(ctx, "x", rpc.Message{})
	if len(conn.sawDeadline) != 2 || !conn.sawDeadline[1] {
		t.Error("caller deadline lost")
	}
}

func TestBreakerOpenHalfOpenClosed(t *testing.T) {
	clk := newFakeClock()
	o := opts(clk)
	o.MaxAttempts = 1 // count transitions per call, no inner retries
	o.Threshold = 3
	o.Cooldown = time.Second
	reg := metrics.NewRegistry()
	o.Registry = reg
	fail := errors.New("dead provider")
	conn := &scriptConn{errs: []error{fail, fail, fail, fail}}
	c := Wrap(conn, o)
	ctx := context.Background()

	// Three consecutive transient failures open the breaker.
	for i := 0; i < 3; i++ {
		if _, err := c.Call(ctx, "x", rpc.Message{}); err == nil {
			t.Fatal("expected failure")
		}
	}
	if s := c.BreakerState(); s != "open" {
		t.Fatalf("state after threshold failures = %s", s)
	}
	// While open, calls are shed without touching the connection.
	before := conn.callCount()
	_, err := c.Call(ctx, "x", rpc.Message{})
	if !errors.Is(err, rpc.ErrUnavailable) {
		t.Fatalf("shed error = %v", err)
	}
	if conn.callCount() != before {
		t.Error("shed call reached the connection")
	}
	// After cooldown one probe goes through; it fails → re-open.
	clk.advance(time.Second)
	if _, err := c.Call(ctx, "x", rpc.Message{}); err == nil {
		t.Fatal("probe unexpectedly succeeded")
	}
	if s := c.BreakerState(); s != "open" {
		t.Fatalf("state after failed probe = %s", s)
	}
	// Next cooldown: the probe succeeds (script exhausted) → closed.
	clk.advance(time.Second)
	if _, err := c.Call(ctx, "x", rpc.Message{}); err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	if s := c.BreakerState(); s != "closed" {
		t.Fatalf("state after successful probe = %s", s)
	}
	snap := reg.Snapshot()
	if snap["rpc.breaker_open"] != 2 || snap["rpc.breaker_close"] != 1 || snap["rpc.breaker_shed"] != 1 {
		t.Errorf("transition counters: %v", snap)
	}
}

func TestRemoteErrorDoesNotTripBreaker(t *testing.T) {
	clk := newFakeClock()
	o := opts(clk)
	o.MaxAttempts = 1
	o.Threshold = 2
	srv := rpc.NewServer()
	srv.Register("boom", func(context.Context, rpc.Message) (rpc.Message, error) {
		return rpc.Message{}, errors.New("boom")
	})
	n := rpc.NewInprocNet()
	n.Listen("a", srv)
	inner, _ := n.Dial("a")
	c := Wrap(inner, o)
	for i := 0; i < 10; i++ {
		c.Call(context.Background(), "boom", rpc.Message{})
	}
	if s := c.BreakerState(); s != "closed" {
		t.Errorf("remote errors tripped the breaker: %s", s)
	}
}

func TestRetrySucceedsAgainstFlakyServer(t *testing.T) {
	// End-to-end through a real fault wrapper: a seeded 50% request-drop
	// fabric must still serve every call thanks to retries.
	srv := rpc.NewServer()
	srv.Register("echo", func(_ context.Context, req rpc.Message) (rpc.Message, error) {
		return rpc.Message{Meta: req.Meta}, nil
	})
	n := rpc.NewInprocNet()
	n.Listen("a", srv)
	inner, _ := n.Dial("a")
	flaky := rpc.WithFaults(inner, rpc.FaultConfig{Seed: 42, DropRequest: 0.5, Registry: metrics.NewRegistry()})

	o := opts(newFakeClock())
	o.MaxAttempts = 10
	o.Threshold = -1 // breaker off: we want raw retry behaviour
	c := Wrap(flaky, o)
	for i := 0; i < 50; i++ {
		msg := rpc.Message{Meta: []byte(fmt.Sprintf("m%d", i))}
		resp, err := c.Call(context.Background(), "echo", msg)
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if string(resp.Meta) != string(msg.Meta) {
			t.Fatalf("call %d: echo mismatch", i)
		}
	}
}

// vecCaptureConn fails the first call transiently, then records the
// request it received and succeeds.
type vecCaptureConn struct {
	scriptConn
	got rpc.Message
}

func (c *vecCaptureConn) Call(ctx context.Context, name string, req rpc.Message) (rpc.Message, error) {
	resp, err := c.scriptConn.Call(ctx, name, req)
	if err == nil {
		c.mu.Lock()
		c.got = req
		c.mu.Unlock()
	}
	return resp, err
}

// TestVectoredRequestPassesThroughRetry checks the middleware neither
// copies nor flattens a vectored bulk payload: the retried attempt
// delivers the exact same slice headers the caller supplied.
func TestVectoredRequestPassesThroughRetry(t *testing.T) {
	inner := &vecCaptureConn{scriptConn: scriptConn{errs: []error{errNet}}}
	c := Wrap(inner, opts(newFakeClock()))

	a, b := []byte{1, 2, 3}, []byte{4, 5}
	req := rpc.Message{Meta: []byte("m"), BulkVec: [][]byte{a, b}}
	if _, err := c.Call(context.Background(), "store", req); err != nil {
		t.Fatal(err)
	}
	if inner.callCount() != 2 {
		t.Fatalf("calls = %d, want 2 (one failure, one retry)", inner.callCount())
	}
	got := inner.got
	if len(got.BulkVec) != 2 || &got.BulkVec[0][0] != &a[0] || &got.BulkVec[1][0] != &b[0] {
		t.Error("middleware copied or flattened the vectored payload")
	}
	if len(req.BulkVec) != 2 || len(req.BulkVec[0]) != 3 || len(req.BulkVec[1]) != 2 {
		t.Error("middleware mutated the caller's request")
	}
}

func TestStateListenerFiresOnTransitions(t *testing.T) {
	clk := newFakeClock()
	o := opts(clk)
	o.MaxAttempts = 1
	o.Threshold = 2
	o.Cooldown = time.Second
	fail := errors.New("dead provider")
	conn := &scriptConn{errs: []error{fail, fail}}
	c := Wrap(conn, o)

	var mu sync.Mutex
	var got []string
	c.SetStateListener(func(addr, state string) {
		mu.Lock()
		got = append(got, addr+":"+state)
		mu.Unlock()
	})

	ctx := context.Background()
	// Two failures open the breaker: exactly one "open" notification.
	for i := 0; i < 2; i++ {
		c.Call(ctx, "x", rpc.Message{}) //nolint:errcheck
	}
	// Successful probe after cooldown re-closes it: one "closed".
	clk.advance(time.Second)
	if _, err := c.Call(ctx, "x", rpc.Message{}); err != nil {
		t.Fatalf("probe: %v", err)
	}
	// Plain successes on a closed breaker must not re-notify.
	if _, err := c.Call(ctx, "x", rpc.Message{}); err != nil {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	want := []string{"script:open", "script:closed"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("listener saw %v, want %v", got, want)
	}
}
