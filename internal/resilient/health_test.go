package resilient

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/rpc"
)

// advanceConn succeeds every call and moves the fake clock forward by d,
// so the wrapping Conn observes a latency of exactly d per call.
type advanceConn struct {
	clk *fakeClock
	d   time.Duration
}

func (c *advanceConn) Call(context.Context, string, rpc.Message) (rpc.Message, error) {
	c.clk.advance(c.d)
	return rpc.Message{Meta: []byte("ok")}, nil
}
func (c *advanceConn) Addr() string { return "advance" }
func (c *advanceConn) Close() error { return nil }

// flapConn fails every other call and advances the fake clock past any
// cooldown, so a wrapping breaker flaps open/closed on every call.
type flapConn struct {
	clk   *fakeClock
	step  time.Duration
	mu    sync.Mutex
	calls int
}

func (c *flapConn) Call(context.Context, string, rpc.Message) (rpc.Message, error) {
	c.clk.advance(c.step)
	c.mu.Lock()
	i := c.calls
	c.calls++
	c.mu.Unlock()
	if i%2 == 0 {
		return rpc.Message{}, errNet
	}
	return rpc.Message{Meta: []byte("ok")}, nil
}
func (c *flapConn) Addr() string { return "flap" }
func (c *flapConn) Close() error { return nil }

func TestScoreFreshConnIsHealthy(t *testing.T) {
	clk := newFakeClock()
	c := Wrap(&scriptConn{}, opts(clk))
	if got := c.Score(); got != 1 {
		t.Fatalf("fresh conn Score() = %v, want 1 (unknown is not unhealthy)", got)
	}
	if got := c.LatencyPercentile(0.95); got != 0 {
		t.Fatalf("fresh conn LatencyPercentile = %v, want 0", got)
	}
}

func TestScoreFoldsErrorRate(t *testing.T) {
	clk := newFakeClock()
	c := Wrap(&scriptConn{}, opts(clk))
	for i := 0; i < 8; i++ {
		c.health.observe(clk.Now(), 0, false)
	}
	s := c.Score()
	if s >= 1 || s <= 0 {
		t.Fatalf("Score() after an error run = %v, want in (0,1)", s)
	}
	// A clean run recovers the score.
	for i := 0; i < 64; i++ {
		c.health.observe(clk.Now(), time.Millisecond, true)
	}
	if s2 := c.Score(); s2 <= s || s2 < 0.9 {
		t.Fatalf("Score() after recovery = %v (was %v), want ~1", s2, s)
	}
}

func TestScoreFoldsBreakerState(t *testing.T) {
	clk := newFakeClock()
	o := opts(clk)
	o.Threshold = 2
	o.Cooldown = time.Second
	c := Wrap(&scriptConn{}, o)
	now := clk.Now()
	c.breaker.onFailure(now)
	c.breaker.onFailure(now) // opens
	if got := c.Score(); got != 0 {
		t.Fatalf("Score() with open breaker = %v, want 0", got)
	}
	clk.advance(2 * time.Second) // cooldown elapsed: a probe would be admitted
	if got := c.Score(); got <= 0 || got > 0.3 {
		t.Fatalf("Score() with open-past-cooldown breaker = %v, want in (0, 0.3]", got)
	}
	c.breaker.onSuccess()
	if got := c.Score(); got <= 0.9 {
		t.Fatalf("Score() after breaker re-close = %v, want ~1", got)
	}
}

func TestScoreRanksGraySlowNodeBelowFleet(t *testing.T) {
	clk := newFakeClock()
	conns := WrapAll([]rpc.Conn{&scriptConn{}, &scriptConn{}, &scriptConn{}}, opts(clk))
	rcs := make([]*Conn, len(conns))
	for i, c := range conns {
		rcs[i] = c.(*Conn)
	}
	// Two healthy members at 1ms, one gray member at 20ms.
	for i := 0; i < 32; i++ {
		rcs[0].health.observe(clk.Now(), time.Millisecond, true)
		rcs[1].health.observe(clk.Now(), time.Millisecond, true)
		rcs[2].health.observe(clk.Now(), 20*time.Millisecond, true)
	}
	if s := rcs[0].Score(); s != 1 {
		t.Fatalf("at-median member Score() = %v, want 1", s)
	}
	gray := rcs[2].Score()
	if gray > 0.1 || gray <= 0 {
		t.Fatalf("20x-slower member Score() = %v, want ~0.05", gray)
	}
}

// cancelConn advances the clock then fails with context.Canceled, exactly
// as a hedge-loser leg does when the winning leg cancels it mid-flight.
type cancelConn struct {
	clk *fakeClock
	d   time.Duration
}

func (c *cancelConn) Call(context.Context, string, rpc.Message) (rpc.Message, error) {
	c.clk.advance(c.d)
	return rpc.Message{}, fmt.Errorf("call: %w", context.Canceled)
}
func (c *cancelConn) Addr() string { return "cancel" }
func (c *cancelConn) Close() error { return nil }

func TestCancelledCallRecordsNoHealthSignal(t *testing.T) {
	clk := newFakeClock()
	c := Wrap(&cancelConn{clk: clk, d: 3 * time.Millisecond}, opts(clk))
	ctx := context.Background()
	for i := 0; i < 32; i++ {
		if _, err := c.Call(ctx, "op", rpc.Message{}); !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	}
	// Every cancelled leg took 3ms of wall time, but none of that is the
	// provider's answer time: recording it would let a fleet of hedge
	// winners mask a gray-slow provider's true latency.
	if got := c.LatencyPercentile(0.95); got != 0 {
		t.Fatalf("LatencyPercentile after cancelled calls = %v, want 0 (no samples)", got)
	}
	if got := c.Score(); got != 1 {
		t.Fatalf("Score after cancelled calls = %v, want 1 (no evidence either way)", got)
	}

	// Nor may a cancelled call reset the breaker's failure streak the way
	// an authoritative answer does.
	o := opts(clk)
	o.Threshold = 2
	c2 := Wrap(&cancelConn{clk: clk, d: time.Millisecond}, o)
	c2.breaker.onFailure(clk.Now())
	if _, err := c2.Call(ctx, "op", rpc.Message{}); !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	if opened := c2.breaker.onFailure(clk.Now()); !opened {
		t.Fatal("failure streak was reset by an interleaved cancelled call")
	}

	// A cancelled half-open probe must release the probe slot: a probe
	// that never reports back would otherwise hold it forever and the
	// breaker would shed every future call against the provider.
	o2 := opts(clk)
	o2.Threshold = 1
	o2.Cooldown = time.Second
	c3 := Wrap(&cancelConn{clk: clk, d: time.Millisecond}, o2)
	c3.breaker.onFailure(clk.Now()) // opens
	clk.advance(2 * time.Second)
	if _, err := c3.Call(ctx, "op", rpc.Message{}); !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	if !c3.breaker.healthy(clk.Now()) {
		t.Fatal("cancelled half-open probe wedged the breaker (slot never released)")
	}
}

func TestLatencyPercentileOrdering(t *testing.T) {
	var h health
	base := time.Unix(1000, 0)
	for i := 1; i <= latWindow; i++ {
		h.observe(base, time.Duration(i)*time.Millisecond, true)
	}
	p50, p99 := h.percentile(0.50), h.percentile(0.99)
	if p50 <= 0 || p99 <= 0 || p50 > p99 {
		t.Fatalf("p50 %v, p99 %v: want 0 < p50 <= p99", p50, p99)
	}
	if p99 < 60*time.Millisecond {
		t.Fatalf("p99 %v, want near the top of the 1..64ms window", p99)
	}
	// The ring keeps only the newest latWindow samples.
	for i := 0; i < latWindow; i++ {
		h.observe(base, time.Second, true)
	}
	if got := h.percentile(0); got != time.Second {
		t.Fatalf("min after ring turnover = %v, want 1s", got)
	}
}

func TestAdaptiveDeadlineTightensFromObservedTail(t *testing.T) {
	clk := newFakeClock()
	o := opts(clk)
	o.DefaultTimeout = 10 * time.Second
	o.AdaptiveDeadline = true
	o.AdaptiveQuantile = 0.99
	o.AdaptiveMult = 4
	o.AdaptiveFloor = time.Millisecond
	c := Wrap(&advanceConn{clk: clk, d: 2 * time.Millisecond}, o)

	// No samples yet: full default timeout.
	if d := c.attemptDeadline(); d != 10*time.Second {
		t.Fatalf("cold attemptDeadline = %v, want DefaultTimeout", d)
	}
	ctx := context.Background()
	for i := 0; i < 16; i++ {
		if _, err := c.Call(ctx, "op", rpc.Message{}); err != nil {
			t.Fatal(err)
		}
	}
	// Every observed call took 2ms, so the deadline contracts to p99*4.
	if d := c.attemptDeadline(); d != 8*time.Millisecond {
		t.Fatalf("warm attemptDeadline = %v, want 8ms (2ms p99 x 4)", d)
	}
	if n := c.opts.Registry.Counter("rpc.adaptive_deadline").Load(); n == 0 {
		t.Fatal("rpc.adaptive_deadline counter never incremented")
	}

	// The floor holds against microsecond-scale observations.
	o.AdaptiveFloor = 50 * time.Millisecond
	c2 := Wrap(&advanceConn{clk: clk, d: 10 * time.Microsecond}, o)
	for i := 0; i < 16; i++ {
		if _, err := c2.Call(ctx, "op", rpc.Message{}); err != nil {
			t.Fatal(err)
		}
	}
	if d := c2.attemptDeadline(); d != 50*time.Millisecond {
		t.Fatalf("floored attemptDeadline = %v, want 50ms", d)
	}
}

// Satellite (-race): concurrent SetStateListener swaps during breaker
// transitions must be safe — notifyState snapshots the listener under its
// own lock while transitions fire from many goroutines.
func TestStateListenerConcurrentSwapRace(t *testing.T) {
	clk := newFakeClock()
	o := opts(clk)
	o.Threshold = 1
	o.MaxAttempts = 1
	o.Cooldown = time.Second
	// Alternate failure/success while advancing the clock past the
	// cooldown each call, so every failure opens the breaker and every
	// success closes it again — a transition per call.
	c := Wrap(&flapConn{clk: clk, step: 2 * time.Second}, o)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				c.SetStateListener(func(addr, state string) {
					_ = addr + state
				})
				c.SetStateListener(nil)
			}
		}(g)
	}
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		_, _ = c.Call(ctx, "op", rpc.Message{}) // alternates fail/ok → open/close storm
	}
	close(stop)
	wg.Wait()
}
