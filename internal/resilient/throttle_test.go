package resilient

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/frontdoor"
	"repro/internal/rpc"
)

func throttled(d time.Duration) error {
	return &frontdoor.ThrottledError{RetryAfter: d}
}

// TestThrottlePacesOnRetryAfter pins the pacing contract: a throttle refusal
// is retried after the server-chosen pause (not exponential backoff) and the
// call ultimately succeeds.
func TestThrottlePacesOnRetryAfter(t *testing.T) {
	clk := newFakeClock()
	o := opts(clk)
	sc := &scriptConn{errs: []error{throttled(50 * time.Millisecond), throttled(80 * time.Millisecond)}}
	c := Wrap(sc, o)

	resp, err := c.Call(context.Background(), "evostore.read_segments", rpc.Message{})
	if err != nil {
		t.Fatalf("call failed despite retry budget: %v", err)
	}
	if string(resp.Meta) != "ok" {
		t.Fatalf("unexpected response %q", resp.Meta)
	}
	want := []time.Duration{50 * time.Millisecond, 80 * time.Millisecond}
	clk.mu.Lock()
	sleeps := append([]time.Duration(nil), clk.sleeps...)
	clk.mu.Unlock()
	if len(sleeps) != len(want) || sleeps[0] != want[0] || sleeps[1] != want[1] {
		t.Errorf("sleeps = %v, want the server-directed %v", sleeps, want)
	}
	if got := o.Registry.Counter("rpc.throttle_backoff").Load(); got != 2 {
		t.Errorf("rpc.throttle_backoff = %d, want 2", got)
	}
}

// TestThrottleNeverTripsBreaker: refusals are authoritative answers, so even
// a run of them longer than the breaker threshold must leave it closed — an
// open breaker would turn pacing into a synthetic outage.
func TestThrottleNeverTripsBreaker(t *testing.T) {
	clk := newFakeClock()
	o := opts(clk)
	o.Threshold = 2
	errs := make([]error, 6)
	for i := range errs {
		errs[i] = throttled(10 * time.Millisecond)
	}
	c := Wrap(&scriptConn{errs: errs}, o)

	_, err := c.Call(context.Background(), "evostore.read_segments", rpc.Message{})
	if err == nil {
		t.Fatal("call succeeded with every attempt throttled")
	}
	if !errors.Is(err, frontdoor.ErrThrottled) {
		t.Fatalf("exhausted call lost the typed throttle error: %v", err)
	}
	if _, ok := frontdoor.RetryAfterFromError(err); !ok {
		t.Fatalf("exhausted call lost the retry-after hint: %v", err)
	}
	if st := c.BreakerState(); st != "closed" {
		t.Errorf("breaker %s after throttle run, want closed", st)
	}
	if got := o.Registry.Counter("rpc.breaker_shed").Load(); got != 0 {
		t.Errorf("breaker shed %d calls during throttling", got)
	}
}

// TestThrottleRetryAfterClamped bounds pathological hints: a huge retry-after
// sleeps at most 5s, a zero one at least 1ms.
func TestThrottleRetryAfterClamped(t *testing.T) {
	clk := newFakeClock()
	o := opts(clk)
	sc := &scriptConn{errs: []error{throttled(30 * time.Second), throttled(0)}}
	c := Wrap(sc, o)
	if _, err := c.Call(context.Background(), "evostore.read_segments", rpc.Message{}); err != nil {
		t.Fatal(err)
	}
	clk.mu.Lock()
	sleeps := append([]time.Duration(nil), clk.sleeps...)
	clk.mu.Unlock()
	if len(sleeps) != 2 || sleeps[0] != 5*time.Second || sleeps[1] != time.Millisecond {
		t.Errorf("sleeps = %v, want [5s 1ms]", sleeps)
	}
}

// TestThrottleSurvivesRemoteFlattening: the hint must survive the TCP
// transport's error flattening (error → string → remote error), which is how
// it actually arrives from a real provider.
func TestThrottleSurvivesRemoteFlattening(t *testing.T) {
	clk := newFakeClock()
	o := opts(clk)
	flat := errors.New("rpc: remote: provider 0: read 7: " + throttled(40*time.Millisecond).Error())
	sc := &scriptConn{errs: []error{flat}}
	c := Wrap(sc, o)
	if _, err := c.Call(context.Background(), "evostore.read_segments", rpc.Message{}); err != nil {
		t.Fatal(err)
	}
	clk.mu.Lock()
	defer clk.mu.Unlock()
	if len(clk.sleeps) != 1 || clk.sleeps[0] != 40*time.Millisecond {
		t.Errorf("sleeps = %v, want [40ms]", clk.sleeps)
	}
}
