package heat_test

import (
	"reflect"
	"testing"

	"repro/internal/heat"
	"repro/internal/ownermap"
	"repro/internal/placement"
	"repro/internal/proto"
)

func TestAggregateSumsAcrossProviders(t *testing.T) {
	heats := [][]proto.ModelHeat{
		{{Model: 1, ReadBps: 100, WriteBps: 10}, {Model: 2, ReadBps: 5}},
		nil, // unreachable provider
		{{Model: 1, ReadBps: 50}},
	}
	got := heat.Aggregate(heats)
	want := map[ownermap.ModelID]float64{1: 160, 2: 5}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Aggregate = %v, want %v", got, want)
	}
}

func TestPlanWidensHotPacksCold(t *testing.T) {
	cur := placement.New(4, 2)
	cfg := heat.Config{HotFactor: 4, ColdFactor: 0.25, PackTo: 1}
	// Mean = (10000+4*1000+1)/6 ≈ 2334: model 7 is >4x mean, model 9 is
	// <0.25x mean, the 1000s sit mid-band (between 583 and 9334).
	h := map[ownermap.ModelID]float64{
		7: 10000, 1: 1000, 2: 1000, 3: 1000, 4: 1000, 9: 1,
	}
	got := heat.Plan(cfg, cur, h)
	want := map[ownermap.ModelID]int{7: 3, 9: 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Plan = %v, want %v", got, want)
	}

	// Packing disabled: only the hot model appears.
	cfg.PackTo = 0
	got = heat.Plan(cfg, cur, h)
	if !reflect.DeepEqual(got, map[ownermap.ModelID]int{7: 3}) {
		t.Errorf("Plan without packing = %v", got)
	}

	// Explicit widen target wins over base R+1.
	cfg.WidenTo = 4
	got = heat.Plan(cfg, cur, h)
	if got[7] != 4 {
		t.Errorf("Plan with WidenTo=4 gave %v", got)
	}
}

func TestPlanQuietDeploymentDecays(t *testing.T) {
	cur := placement.New(4, 2).WithOverrides(map[ownermap.ModelID]int{7: 3})
	// Total heat under the floor: the plan clears every override.
	if got := heat.Plan(heat.Config{MinTotalBps: 100}, cur, map[ownermap.ModelID]float64{7: 1}); got != nil {
		t.Errorf("quiet plan = %v, want nil", got)
	}
	if got := heat.Plan(heat.Config{}, cur, nil); got != nil {
		t.Errorf("empty-heat plan = %v, want nil", got)
	}
}

func TestPlanStableWhenBalanced(t *testing.T) {
	cur := placement.New(4, 2)
	h := map[ownermap.ModelID]float64{1: 100, 2: 110, 3: 95, 4: 105}
	if got := heat.Plan(heat.Config{PackTo: 1}, cur, h); got != nil {
		t.Errorf("balanced plan = %v, want nil (no churn near the mean)", got)
	}
}

func TestPlanCooledModelReturnsToBase(t *testing.T) {
	// Model 7 is widened but no longer measurable; with traffic elsewhere
	// keeping the deployment above the quiet floor, its override drops.
	cur := placement.New(4, 2).WithOverrides(map[ownermap.ModelID]int{7: 3})
	h := map[ownermap.ModelID]float64{1: 500, 2: 450}
	if got := heat.Plan(heat.Config{}, cur, h); got != nil {
		t.Errorf("plan = %v, want nil (cooled override dropped, mid-band untouched)", got)
	}
}

func TestPlanMaxChangesBounded(t *testing.T) {
	cur := placement.New(8, 2)
	cfg := heat.Config{MaxChanges: 2, PackTo: 1}
	// Two hot models, three mid-band, five cold: far more change
	// candidates than the budget of 2. (Mean ≈ 21400: hot > 85600,
	// cold < 5350.)
	h := map[ownermap.ModelID]float64{
		1: 100000, 2: 90000, 3: 8000, 4: 8000, 5: 8000,
		6: 1, 7: 1, 8: 1, 9: 1, 10: 1,
	}
	got := heat.Plan(cfg, cur, h)
	if len(got) != 2 {
		t.Fatalf("plan changed %d models with MaxChanges=2: %v", len(got), got)
	}
	// Hottest-first: the two hottest models take the slots.
	if got[1] != 3 || got[2] != 3 {
		t.Errorf("plan = %v, want the two hottest widened", got)
	}

	// Existing overrides beyond the budget are kept, not silently dropped.
	cur2 := cur.WithOverrides(map[ownermap.ModelID]int{6: 1, 7: 1})
	got2 := heat.Plan(cfg, cur2, h)
	if got2[6] != 1 || got2[7] != 1 {
		t.Errorf("plan %v dropped funded overrides it had no budget to change", got2)
	}
}

func TestPlanDeterministic(t *testing.T) {
	cur := placement.New(4, 2)
	h := map[ownermap.ModelID]float64{1: 9000, 2: 8000, 3: 10, 4: 12, 5: 11, 6: 9}
	cfg := heat.Config{PackTo: 1, MaxChanges: 3}
	first := heat.Plan(cfg, cur, h)
	for i := 0; i < 20; i++ {
		if got := heat.Plan(cfg, cur, h); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d: plan %v != %v", i, got, first)
		}
	}
}
