package heat_test

import (
	"context"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/heat"
	"repro/internal/metrics"
	"repro/internal/model"
)

// benchModel is a small fixed architecture the controller tests store.
func benchModel(t testing.TB) *model.Flat {
	t.Helper()
	flat, err := model.Flatten(model.Sequential("heat", 8,
		model.Dense{In: 8, Out: 8, Activation: "relu", UseBias: true},
		model.Dense{In: 8, Out: 4},
	))
	if err != nil {
		t.Fatal(err)
	}
	return flat
}

// TestControllerWidensHotModel drives the full loop against an embedded
// deployment: a zipf-shaped workload makes one model far hotter than the
// rest, a controller Step reads the exported heat, bumps the epoch with a
// widened replica set for the hot model and a packed set for the cold
// ones, and the deployment stays consistent throughout.
func TestControllerWidensHotModel(t *testing.T) {
	// SegCacheBytes < 0 disables the client's segment cache so repeat
	// loads actually reach providers and register as read heat.
	repo, err := core.Open(core.Options{Providers: 4, Replicas: 2, SegCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	ctx := context.Background()
	flat := benchModel(t)

	var ids []core.ModelID
	for i := 0; i < 8; i++ {
		id, err := repo.Store(ctx, flat, model.Materialize(flat, uint64(i+1)), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	hot := ids[0]
	for i := 0; i < 60; i++ {
		if _, _, err := repo.Load(ctx, hot); err != nil {
			t.Fatal(err)
		}
	}

	reg := metrics.NewRegistry()
	ctl := heat.New(repo.Client(), heat.Config{PackTo: 1}, reg)
	if err := ctl.Step(ctx); err != nil {
		t.Fatalf("controller step: %v", err)
	}

	tbl := repo.PlacementTable()
	if tbl.Epoch != 1 {
		t.Fatalf("epoch after step = %d, want 1 (heat table = %v)", tbl.Epoch, tbl)
	}
	if got := tbl.ReplicasFor(hot); got != 3 {
		t.Errorf("hot model replica count = %d, want widened to 3 (overrides %v)", got, tbl.Overrides)
	}
	widened, packed := 0, 0
	for _, r := range tbl.Overrides {
		if r > tbl.R() {
			widened++
		} else if r < tbl.R() {
			packed++
		}
	}
	if widened != 1 {
		t.Errorf("widened %d models, want exactly the hot one (overrides %v)", widened, tbl.Overrides)
	}
	if packed == 0 {
		t.Errorf("no cold model packed (overrides %v)", tbl.Overrides)
	}
	if got := reg.Counter("heat.rebalances").Load(); got != 1 {
		t.Errorf("heat.rebalances = %d, want 1", got)
	}

	// A second step with unchanged heat plans the same overrides and does
	// not burn another epoch. (Run before the verification loads below —
	// those add read heat of their own and may legitimately re-plan.)
	if err := ctl.Step(ctx); err != nil {
		t.Fatal(err)
	}
	if got := repo.PlacementTable().Epoch; got != 1 {
		t.Errorf("idle re-step bumped epoch to %d", got)
	}

	// Every model still loads after the migration.
	for _, id := range ids {
		if _, _, err := repo.Load(ctx, id); err != nil {
			t.Errorf("load %d after rebalance: %v", id, err)
		}
	}
}

// TestControllerRacesManualRebalance is the -race check for concurrent
// placement transitions: controller cycles run against a manual membership
// rebalance on the same deployment. Exactly one epoch bump wins each race
// (the loser either re-plans or reports a lost race), no request fails,
// and the deployment converges to a single consistent epoch.
func TestControllerRacesManualRebalance(t *testing.T) {
	repo, err := core.Open(core.Options{Providers: 3, SpareProviders: 1, Replicas: 2, SegCacheBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	ctx := context.Background()
	flat := benchModel(t)

	var ids []core.ModelID
	for i := 0; i < 6; i++ {
		id, err := repo.Store(ctx, flat, model.Materialize(flat, uint64(i+1)), 0.5)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	hot := ids[0]
	for i := 0; i < 40; i++ {
		if _, _, err := repo.Load(ctx, hot); err != nil {
			t.Fatal(err)
		}
	}

	reg := metrics.NewRegistry()
	ctl := heat.New(repo.Client(), heat.Config{PackTo: 1}, reg)

	var (
		wg          sync.WaitGroup
		manualWins  atomic.Int64
		loadFails   atomic.Int64
		controllerE atomic.Value
	)
	// Controller cycles.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 6; i++ {
			if err := ctl.Step(ctx); err != nil {
				controllerE.Store(err)
				return
			}
		}
	}()
	// Manual operator rebalance: join the spare (the evostore-ctl
	// placement path). Losing the epoch race to the controller is legal;
	// winning must move the epoch exactly once.
	wg.Add(1)
	go func() {
		defer wg.Done()
		if _, err := repo.Rebalance(ctx, []int{0, 1, 2, 3}); err == nil {
			manualWins.Add(1)
		} else if !isRaceLoss(err) {
			controllerE.Store(err)
		}
	}()
	// Foreground reads throughout.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			if _, _, err := repo.Load(ctx, ids[i%len(ids)]); err != nil {
				loadFails.Add(1)
			}
		}
	}()
	wg.Wait()

	if e := controllerE.Load(); e != nil {
		t.Fatalf("racing rebalances surfaced a hard error: %v", e)
	}
	if n := loadFails.Load(); n != 0 {
		t.Errorf("%d foreground reads failed during racing rebalances", n)
	}

	// Every provider and the client agree on one final epoch, nothing is
	// left mid-migration, and the epoch moved once per winning rebalance.
	st := repo.Client().Placement()
	if st.Migrating() {
		t.Fatalf("deployment left mid-migration: %v", st)
	}
	wins := manualWins.Load() + int64(reg.Counter("heat.rebalances").Load())
	if wins == 0 {
		t.Fatal("neither the controller nor the manual rebalance ever won")
	}
	if got := int64(st.Cur.Epoch); got != wins {
		t.Errorf("final epoch %d != %d winning rebalances — a bump was lost or duplicated", got, wins)
	}
	for i, p := range repo.Providers() {
		pst := p.PlacementState()
		if pst.Migrating() || pst.Cur.Epoch != st.Cur.Epoch {
			t.Errorf("provider %d state %v disagrees with client epoch %d", i, pst, st.Cur.Epoch)
		}
	}
	for _, id := range ids {
		if _, _, err := repo.Load(ctx, id); err != nil {
			t.Errorf("load %d after races: %v", id, err)
		}
	}
}

// isRaceLoss mirrors the controller's lost-race classification for the
// manual path: a concurrent migration or a stale successor target.
func isRaceLoss(err error) bool {
	if err == nil {
		return false
	}
	return strings.Contains(err.Error(), "already in progress") ||
		strings.Contains(err.Error(), "is not the successor")
}
