// Package heat closes the loop between access telemetry and placement:
// a Controller periodically aggregates the per-model EWMA read/write
// rates every provider exports on its Metrics RPC, detects skew — models
// far hotter or colder than the mean — and drives the client Rebalancer
// toward a placement whose per-model replica counts match the load. Hot
// models widen beyond the base replication factor so reads fan out; cold
// models pack down so capacity is not spent replicating dead weight.
//
// The controller is deliberately conservative:
//
//   - Decisions are hysteresis-shaped: a model must exceed HotFactor × the
//     mean heat to widen and fall below ColdFactor × the mean to pack, so
//     models near the mean never flap.
//   - A quiet deployment (total heat under MinTotalBps) plans no overrides
//     at all, and an existing override set decays back to the base table —
//     idle clusters converge to the plain placement rather than fossilizing
//     the last busy hour's layout.
//   - At most MaxChanges override changes ship per cycle; the rest wait for
//     the next one, bounding how much data any single epoch bump moves.
//   - Migration payload bytes are paced against BudgetBytesPerSec via the
//     front-door token-bucket machinery, so the background migration cannot
//     starve foreground traffic of fabric bandwidth.
//
// Losing a race to a concurrent manual rebalance (evostore-ctl placement)
// is a tolerated outcome, not an error: the controller re-syncs its view
// and re-plans against the winner's table on the next cycle.
package heat

import (
	"context"
	"errors"
	"sort"
	"strings"
	"time"

	"repro/internal/client"
	"repro/internal/metrics"
	"repro/internal/ownermap"
	"repro/internal/placement"
	"repro/internal/proto"
)

// Defaults for Config fields left zero.
const (
	DefaultInterval    = 5 * time.Second
	DefaultHotFactor   = 4.0
	DefaultColdFactor  = 0.25
	DefaultMaxChanges  = 32
	DefaultMinTotalBps = 1.0
)

// Config tunes a Controller. The zero value is usable: every field has a
// default, and a zero PackTo disables packing (widening only).
type Config struct {
	// Interval between controller cycles (default 5s).
	Interval time.Duration
	// HotFactor: a model widens when its heat exceeds HotFactor × mean
	// (default 4).
	HotFactor float64
	// ColdFactor: a model packs when its heat falls below ColdFactor ×
	// mean (default 0.25). Models between the factors keep the base count.
	ColdFactor float64
	// WidenTo is the replica count for hot models; 0 means base R + 1.
	WidenTo int
	// PackTo is the replica count for cold models; 0 disables packing.
	PackTo int
	// MinTotalBps is the quiet floor: when the deployment's total heat is
	// below it, the plan is "no overrides" (default 1 B/s).
	MinTotalBps float64
	// MaxChanges bounds how many models change override per cycle
	// (default 32).
	MaxChanges int
	// BudgetBytesPerSec paces migration payload bytes; 0 leaves the
	// migration unpaced.
	BudgetBytesPerSec float64
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = DefaultInterval
	}
	if c.HotFactor <= 0 {
		c.HotFactor = DefaultHotFactor
	}
	if c.ColdFactor <= 0 {
		c.ColdFactor = DefaultColdFactor
	}
	if c.MaxChanges <= 0 {
		c.MaxChanges = DefaultMaxChanges
	}
	if c.MinTotalBps <= 0 {
		c.MinTotalBps = DefaultMinTotalBps
	}
	return c
}

// Controller drives heat-based rebalancing over one client's deployment.
// Run it from exactly one place per deployment; a second controller (or a
// concurrent manual rebalance) is safe but one of the two loses each epoch
// race and re-plans.
type Controller struct {
	c   *client.Client
	reb *client.Rebalancer
	cfg Config

	cycles     *metrics.Counter // controller cycles completed
	rebalances *metrics.Counter // epoch bumps this controller won
	lostRaces  *metrics.Counter // cycles that lost the epoch race and re-synced
	widened    *metrics.Counter // models widened above base R (cumulative)
	packed     *metrics.Counter // models packed below base R (cumulative)
}

// New builds a controller over c. reg defaults to the client's registry
// semantics: counters land in metrics.Default unless the client was built
// with its own registry — pass reg explicitly to keep bench runs isolated.
func New(c *client.Client, cfg Config, reg *metrics.Registry) *Controller {
	if reg == nil {
		reg = metrics.Default
	}
	ctl := &Controller{
		c:          c,
		reb:        client.NewRebalancer(c),
		cfg:        cfg.withDefaults(),
		cycles:     reg.Counter("heat.cycles"),
		rebalances: reg.Counter("heat.rebalances"),
		lostRaces:  reg.Counter("heat.lost_race"),
		widened:    reg.Counter("heat.widened"),
		packed:     reg.Counter("heat.packed"),
	}
	ctl.reb.SetPayloadBudget(cfg.BudgetBytesPerSec)
	return ctl
}

// Aggregate folds per-provider heat samples into one total per model
// (read + write bytes/sec summed across every provider holding a
// replica). Nil sample slices — unreachable or pre-heat providers — are
// skipped.
func Aggregate(heats [][]proto.ModelHeat) map[ownermap.ModelID]float64 {
	total := make(map[ownermap.ModelID]float64)
	for _, samples := range heats {
		for _, h := range samples {
			total[h.Model] += h.ReadBps + h.WriteBps
		}
	}
	return total
}

// Plan is the pure decision function: given the current table and the
// aggregated per-model heat, it returns the override set the table should
// converge to. Deterministic (iteration order is sorted by model ID) and
// side-effect free, so it unit-tests without a cluster.
//
// The returned map is the FULL desired override set, not a delta; compare
// against cur.Overrides (after normalization) to decide whether an epoch
// bump is warranted. MaxChanges is enforced against that comparison:
// models are admitted hottest-first for widening and coldest-first for
// packing until the change budget is spent.
func Plan(cfg Config, cur *placement.Table, heat map[ownermap.ModelID]float64) map[ownermap.ModelID]int {
	cfg = cfg.withDefaults()
	total := 0.0
	for _, h := range heat {
		total += h
	}
	if total < cfg.MinTotalBps || len(heat) == 0 {
		return nil // quiet deployment: decay to the base table
	}
	mean := total / float64(len(heat))

	widenTo := cfg.WidenTo
	if widenTo <= 0 {
		widenTo = cur.R() + 1
	}

	ids := make([]ownermap.ModelID, 0, len(heat))
	for id := range heat {
		ids = append(ids, id)
	}
	// Hottest first: when the change budget truncates the plan, the most
	// skewed models win the slots.
	sort.Slice(ids, func(i, j int) bool {
		if heat[ids[i]] != heat[ids[j]] {
			return heat[ids[i]] > heat[ids[j]]
		}
		return ids[i] < ids[j]
	})

	desired := make(map[ownermap.ModelID]int)
	// Overrides for models with no measurable heat anymore are dropped
	// (not carried), so a model that cooled off returns to base placement.
	changes := 0
	budget := func(id ownermap.ModelID, want int) bool {
		if cur.Overrides[id] == want || (want == cur.R() && cur.Overrides[id] == 0) {
			return true // no change: free
		}
		if changes >= cfg.MaxChanges {
			// Keep the current override instead: an unfunded change must
			// not silently revert the model to base.
			if r, ok := cur.Overrides[id]; ok {
				desired[id] = r
			}
			return false
		}
		changes++
		return true
	}
	for _, id := range ids {
		h := heat[id]
		switch {
		case h > cfg.HotFactor*mean:
			if budget(id, widenTo) {
				desired[id] = widenTo
			}
		case cfg.PackTo > 0 && h < cfg.ColdFactor*mean:
			if budget(id, cfg.PackTo) {
				desired[id] = cfg.PackTo
			}
		default:
			// Mid-band heat earns the base count: dropping an existing
			// override is the hysteresis exit, and it costs change budget
			// like any other move.
			if r, ok := cur.Overrides[id]; ok && changes >= cfg.MaxChanges {
				desired[id] = r
			} else if _, ok := cur.Overrides[id]; ok {
				changes++
			}
		}
	}
	// Models that had an override but no longer appear in the heat map
	// cooled below the floor: drop their overrides within budget.
	cooled := make([]ownermap.ModelID, 0)
	for id := range cur.Overrides {
		if _, measured := heat[id]; !measured {
			cooled = append(cooled, id)
		}
	}
	sort.Slice(cooled, func(i, j int) bool { return cooled[i] < cooled[j] })
	for _, id := range cooled {
		if changes >= cfg.MaxChanges {
			desired[id] = cur.Overrides[id]
		} else {
			changes++
		}
	}
	if len(desired) == 0 {
		return nil
	}
	return desired
}

// Step runs one controller cycle: snapshot heat, plan, and — when the
// plan differs from the live table — drive one epoch bump through the
// Rebalancer. Losing the epoch race to a concurrent rebalance is not an
// error: the view is re-synced and the next cycle re-plans.
func (ctl *Controller) Step(ctx context.Context) error {
	ctl.cycles.Inc()
	heats, _ := ctl.c.Heat(ctx) // per-provider errors tolerated: plan on what answered
	agg := Aggregate(heats)

	cur := ctl.c.Placement().Cur
	desired := Plan(ctl.cfg, cur, agg)
	if equalOverrides(cur.Overrides, normalizedLike(cur, desired)) {
		return nil // plan matches the live table: no epoch bump
	}

	next := cur.NextOverrides(desired)
	_, err := ctl.reb.Rebalance(ctx, next)
	if err != nil {
		if isLostRace(err) {
			ctl.lostRaces.Inc()
			if _, serr := ctl.c.SyncPlacement(ctx); serr != nil {
				return serr
			}
			return nil
		}
		return err
	}
	ctl.rebalances.Inc()
	base := next.R()
	for _, r := range next.Overrides {
		if r > base {
			ctl.widened.Inc()
		} else if r < base {
			ctl.packed.Inc()
		}
	}
	return nil
}

// Run loops Step every Interval until ctx is done. Step errors are
// counted and swallowed — a controller must outlive transient provider
// failures — except ctx cancellation, which ends the loop.
func (ctl *Controller) Run(ctx context.Context) {
	tick := time.NewTicker(ctl.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if err := ctl.Step(ctx); err != nil && errors.Is(err, context.Canceled) {
				return
			}
		}
	}
}

// isLostRace classifies Rebalance failures that mean "someone else moved
// the epoch first": a migration already in progress, or the target no
// longer being the successor of the live table.
func isLostRace(err error) bool {
	s := err.Error()
	return strings.Contains(s, "already in progress") || strings.Contains(s, "is not the successor")
}

// equalOverrides compares two override maps.
func equalOverrides(a, b map[ownermap.ModelID]int) bool {
	if len(a) != len(b) {
		return false
	}
	for id, r := range a {
		if b[id] != r {
			return false
		}
	}
	return true
}

// normalizedLike normalizes desired the way cur's successor table would,
// so "plan equals live overrides" compares like with like.
func normalizedLike(cur *placement.Table, desired map[ownermap.ModelID]int) map[ownermap.ModelID]int {
	return cur.WithOverrides(desired).Overrides
}
