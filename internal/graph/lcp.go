package graph

// This file implements Algorithm 1 of the paper: finding the longest common
// directed-graph prefix (LCP) between a query graph G and a candidate
// ancestor graph A.
//
// The generalized prefix is the set of vertices V such that v ∈ V iff
// (1) the leaf-layer architecture of v is identical in G and A, and
// (2) all vertices whose outputs feed v are also in V.
// The algorithm expands a frontier from the root(s), counting for each
// vertex how many of its in-edges arrive from already-matched vertices in
// BOTH graphs; a vertex joins the prefix when the counter reaches
// max(in-degree in G, in-degree in A).

// LCP computes the longest common prefix between g (the query) and a (a
// candidate ancestor) and returns the matched vertex IDs of g in ascending
// order. The worst-case cost is O(min(|V_g|, |V_a|)) as a DAG has O(|V|)
// edges for the bounded-degree architectures considered here.
func LCP(g, a *Compact) []VertexID {
	s := NewLCPScanner(g)
	return s.Against(a)
}

// LCPSize returns only the size of the longest common prefix.
func LCPSize(g, a *Compact) int { return len(LCP(g, a)) }

// LCPScanner runs many LCP computations of one query graph against a
// catalog of ancestors, reusing scratch buffers between calls. Providers
// hold one scanner per query while iterating their local metadata.
type LCPScanner struct {
	g        *Compact
	visits   []uint32
	inPrefix []bool
	frontier []VertexID
	prefix   []VertexID
}

// NewLCPScanner prepares a scanner for query graph g.
func NewLCPScanner(g *Compact) *LCPScanner {
	n := g.NumVertices()
	return &LCPScanner{
		g:        g,
		visits:   make([]uint32, n),
		inPrefix: make([]bool, n),
		frontier: make([]VertexID, 0, n),
		prefix:   make([]VertexID, 0, n),
	}
}

// Against computes the LCP of the scanner's query graph with ancestor a.
// The returned slice is valid until the next call; callers that retain it
// must copy.
func (s *LCPScanner) Against(a *Compact) []VertexID {
	g := s.g
	n := g.NumVertices()
	an := a.NumVertices()
	for i := 0; i < n; i++ {
		s.visits[i] = 0
		s.inPrefix[i] = false
	}
	s.frontier = s.frontier[:0]
	s.prefix = s.prefix[:0]

	// Seed the frontier with matching roots. A root of G matches iff the
	// same ID is a root of A with identical leaf-layer configuration.
	for _, r := range g.Roots {
		if int(r) < an && len(a.In[r]) == 0 &&
			g.Vertices[r].ConfigSig == a.Vertices[r].ConfigSig {
			s.frontier = append(s.frontier, r)
			s.inPrefix[r] = true
		}
	}

	for head := 0; head < len(s.frontier); head++ {
		u := s.frontier[head]
		s.prefix = append(s.prefix, u)
		for _, v := range g.Out[u] {
			if int(v) >= an {
				continue // v does not exist in the ancestor
			}
			if g.Vertices[v].ConfigSig != a.Vertices[v].ConfigSig {
				continue // leaf-layer architectures differ
			}
			if !a.HasEdge(u, v) {
				continue // edge exists only in the query graph
			}
			s.visits[v]++
			need := uint32(len(g.In[v]))
			if an := uint32(len(a.In[v])); an > need {
				need = an
			}
			if s.visits[v] == need && !s.inPrefix[v] {
				s.inPrefix[v] = true
				s.frontier = append(s.frontier, v)
			}
		}
	}

	sortIDs(s.prefix)
	return s.prefix
}

// SizeAgainst computes only the LCP size, avoiding the final sort.
func (s *LCPScanner) SizeAgainst(a *Compact) int {
	g := s.g
	n := g.NumVertices()
	an := a.NumVertices()
	for i := 0; i < n; i++ {
		s.visits[i] = 0
		s.inPrefix[i] = false
	}
	s.frontier = s.frontier[:0]
	for _, r := range g.Roots {
		if int(r) < an && len(a.In[r]) == 0 &&
			g.Vertices[r].ConfigSig == a.Vertices[r].ConfigSig {
			s.frontier = append(s.frontier, r)
			s.inPrefix[r] = true
		}
	}
	for head := 0; head < len(s.frontier); head++ {
		u := s.frontier[head]
		for _, v := range g.Out[u] {
			if int(v) >= an {
				continue
			}
			if g.Vertices[v].ConfigSig != a.Vertices[v].ConfigSig {
				continue
			}
			if !a.HasEdge(u, v) {
				continue
			}
			s.visits[v]++
			need := uint32(len(g.In[v]))
			if an := uint32(len(a.In[v])); an > need {
				need = an
			}
			if s.visits[v] == need && !s.inPrefix[v] {
				s.inPrefix[v] = true
				s.frontier = append(s.frontier, v)
			}
		}
	}
	return len(s.frontier)
}

// PrefixParamBytes sums the parameter bytes of the given prefix vertices of
// g; used to size the tensors transferred for transfer learning.
func PrefixParamBytes(g *Compact, prefix []VertexID) int64 {
	var n int64
	for _, v := range prefix {
		n += g.Vertices[v].ParamBytes
	}
	return n
}
