package graph

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// chain builds a linear graph with the given per-vertex config signatures.
func chain(sigs ...uint64) *Compact {
	b := NewBuilder(len(sigs))
	for i, s := range sigs {
		b.AddVertex(Vertex{ConfigSig: s, ParamBytes: 10})
		if i > 0 {
			b.AddEdge(VertexID(i-1), VertexID(i))
		}
	}
	return b.Build()
}

func TestBuilderBasics(t *testing.T) {
	g := chain(1, 2, 3)
	if g.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d", g.NumVertices())
	}
	if len(g.Roots) != 1 || g.Roots[0] != 0 {
		t.Fatalf("Roots = %v", g.Roots)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 2) || g.HasEdge(0, 2) {
		t.Error("edge set wrong")
	}
	if g.InDegree(0) != 0 || g.InDegree(2) != 1 {
		t.Error("in-degrees wrong")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if g.TotalParamBytes() != 30 {
		t.Errorf("TotalParamBytes = %d", g.TotalParamBytes())
	}
}

func TestBuilderDedupsEdges(t *testing.T) {
	b := NewBuilder(2)
	b.AddVertex(Vertex{ConfigSig: 1})
	b.AddVertex(Vertex{ConfigSig: 2})
	b.AddEdge(0, 1)
	b.AddEdge(0, 1)
	g := b.Build()
	if len(g.Out[0]) != 1 {
		t.Errorf("duplicate edge stored: %v", g.Out[0])
	}
}

func TestValidateDetectsCycle(t *testing.T) {
	b := NewBuilder(2)
	b.AddVertex(Vertex{ConfigSig: 1})
	b.AddVertex(Vertex{ConfigSig: 2})
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	g := b.Build()
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted a cycle")
	}
}

func TestEqualAndFingerprint(t *testing.T) {
	a := chain(1, 2, 3)
	b := chain(1, 2, 3)
	c := chain(1, 2, 4)
	if !a.Equal(b) || a.Fingerprint() != b.Fingerprint() {
		t.Error("identical graphs compared unequal")
	}
	if a.Equal(c) || a.Fingerprint() == c.Fingerprint() {
		t.Error("different graphs compared equal")
	}
	// Names must not affect architecture equality.
	d := chain(1, 2, 3)
	d.Vertices[1].Name = "renamed"
	if !a.Equal(d) {
		t.Error("Equal considered names")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := chain(1, 2, 3)
	c := a.Clone()
	c.Vertices[0].ConfigSig = 99
	c.Out[0] = append(c.Out[0], 2)
	if a.Vertices[0].ConfigSig == 99 || len(a.Out[0]) != 1 {
		t.Error("Clone shares storage with original")
	}
}

// --- LCP: paper Figure 2 scenario -----------------------------------------
//
// Grandparent: 1→2→3→4→5 (submodel A={3,4} already flattened).
// Parent:      1→2→3→4'→5' where 4',5' differ ⇒ LCP(parent,gp) = {1,2,3}.
// Child:       same as parent except layer 6 (here the last) differs
//              ⇒ LCP(child,parent) = {1,2,3,4,5}.

func TestLCPFigure2Chain(t *testing.T) {
	gp := chain(1, 2, 3, 4, 5)
	parent := chain(1, 2, 3, 40, 50, 60, 70)
	child := chain(1, 2, 3, 40, 50, 61, 70)

	if got := LCP(parent, gp); len(got) != 3 {
		t.Errorf("LCP(parent, grandparent) = %v, want {0,1,2}", got)
	}
	if got := LCP(child, parent); len(got) != 5 {
		t.Errorf("LCP(child, parent) = %v, want first 5", got)
	}
	// Even if a later layer matched again, the prefix must stop at the
	// first mismatch (prefix-closure): vertex 6 matches (70) but its
	// predecessor 5 does not (61 vs 60), so it stays excluded.
	got := LCP(child, parent)
	for _, v := range got {
		if v == 6 {
			t.Error("prefix included vertex past a mismatched predecessor")
		}
	}
}

func TestLCPIdentityCoversWholeGraph(t *testing.T) {
	g := diamond()
	got := LCP(g, g)
	if len(got) != g.NumVertices() {
		t.Errorf("LCP(g,g) = %d vertices, want %d", len(got), g.NumVertices())
	}
}

// diamond: 0→1, 0→2, 1→3, 2→3 — a fork-join as in branchy architectures.
func diamond() *Compact {
	b := NewBuilder(4)
	b.AddVertex(Vertex{ConfigSig: 10, ParamBytes: 1})
	b.AddVertex(Vertex{ConfigSig: 11, ParamBytes: 1})
	b.AddVertex(Vertex{ConfigSig: 12, ParamBytes: 1})
	b.AddVertex(Vertex{ConfigSig: 13, ParamBytes: 1})
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	return b.Build()
}

func TestLCPForkJoinRequiresAllInputs(t *testing.T) {
	g := diamond()
	// Ancestor identical except branch vertex 2 differs. The join vertex 3
	// matches architecturally but one of its inputs is outside the prefix,
	// so it must be excluded: prefix = {0, 1}.
	a := diamond()
	a.Vertices[2].ConfigSig = 99
	got := LCP(g, a)
	if len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("LCP = %v, want [0 1]", got)
	}
}

func TestLCPInDegreeMismatch(t *testing.T) {
	// Ancestor has an extra edge 0→3: the join vertex needs
	// max(in_G, in_A) = 3 visits but can only get 2 ⇒ excluded.
	g := diamond()
	b := NewBuilder(4)
	for _, v := range g.Vertices {
		b.AddVertex(v)
	}
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	b.AddEdge(0, 3)
	a := b.Build()
	got := LCP(g, a)
	if len(got) != 3 {
		t.Errorf("LCP = %v, want {0,1,2}", got)
	}
	for _, v := range got {
		if v == 3 {
			t.Error("join vertex included despite in-degree mismatch")
		}
	}
}

func TestLCPRootMismatch(t *testing.T) {
	g := chain(1, 2, 3)
	a := chain(9, 2, 3)
	if got := LCP(g, a); len(got) != 0 {
		t.Errorf("LCP with mismatched root = %v, want empty", got)
	}
}

func TestLCPEmptyAncestor(t *testing.T) {
	g := chain(1, 2)
	a := NewBuilder(0).Build()
	if got := LCP(g, a); len(got) != 0 {
		t.Errorf("LCP against empty graph = %v", got)
	}
}

func TestLCPAncestorShorter(t *testing.T) {
	g := chain(1, 2, 3, 4, 5)
	a := chain(1, 2, 3)
	if got := LCP(g, a); len(got) != 3 {
		t.Errorf("LCP = %v, want 3 vertices", got)
	}
}

func TestLCPQueryShorter(t *testing.T) {
	g := chain(1, 2)
	a := chain(1, 2, 3, 4)
	if got := LCP(g, a); len(got) != 2 {
		t.Errorf("LCP = %v, want 2 vertices", got)
	}
}

func TestScannerReuseMatchesOneShot(t *testing.T) {
	g := chain(1, 2, 3, 4)
	s := NewLCPScanner(g)
	ancestors := []*Compact{
		chain(1, 2, 3, 4),
		chain(1, 2, 9),
		chain(5),
		chain(1, 2, 3, 4, 5, 6),
	}
	for i, a := range ancestors {
		want := LCP(g, a)
		got := append([]VertexID(nil), s.Against(a)...)
		if len(got) != len(want) {
			t.Errorf("ancestor %d: scanner %v vs one-shot %v", i, got, want)
		}
		if s.SizeAgainst(a) != len(want) {
			t.Errorf("ancestor %d: SizeAgainst = %d, want %d", i, s.SizeAgainst(a), len(want))
		}
	}
}

func TestPrefixParamBytes(t *testing.T) {
	g := chain(1, 2, 3)
	if got := PrefixParamBytes(g, []VertexID{0, 2}); got != 20 {
		t.Errorf("PrefixParamBytes = %d, want 20", got)
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	g := diamond()
	g.Vertices[1].Name = "block/conv"
	enc := g.Encode()
	back, n, err := Decode(enc)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if n != len(enc) {
		t.Fatalf("consumed %d of %d", n, len(enc))
	}
	if !g.Equal(back) {
		t.Error("architecture mismatch after roundtrip")
	}
	if back.Vertices[1].Name != "block/conv" {
		t.Error("name lost in roundtrip")
	}
	if back.Vertices[0].ParamBytes != 1 {
		t.Error("param bytes lost in roundtrip")
	}
	if err := back.Validate(); err != nil {
		t.Errorf("decoded graph invalid: %v", err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	enc := diamond().Encode()
	for cut := 0; cut < len(enc); cut += 3 {
		if _, _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("Decode accepted truncation at %d", cut)
		}
	}
}

func TestDecodeBadMagic(t *testing.T) {
	enc := diamond().Encode()
	enc[0] ^= 0xff
	if _, _, err := Decode(enc); err == nil {
		t.Error("Decode accepted bad magic")
	}
}

// randomDAG builds a random layered DAG for property tests. Edges only go
// from lower to higher IDs so the result is acyclic by construction.
func randomDAG(r *rand.Rand, n int, sigRange uint64) *Compact {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddVertex(Vertex{ConfigSig: 1 + r.Uint64()%sigRange, ParamBytes: int64(r.Intn(100))})
	}
	for v := 1; v < n; v++ {
		// Every vertex gets at least one predecessor so there is one root.
		b.AddEdge(VertexID(r.Intn(v)), VertexID(v))
		if r.Intn(3) == 0 {
			b.AddEdge(VertexID(r.Intn(v)), VertexID(v))
		}
	}
	return b.Build()
}

// Property: the LCP is prefix-closed (all predecessors of a member are
// members) and every member has matching config in both graphs.
func TestQuickLCPPrefixClosed(t *testing.T) {
	f := func(seed int64, gn, an uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+int(gn%30), 4)
		a := randomDAG(r, 2+int(an%30), 4)
		prefix := LCP(g, a)
		in := make(map[VertexID]bool, len(prefix))
		for _, v := range prefix {
			in[v] = true
		}
		for _, v := range prefix {
			if g.Vertices[v].ConfigSig != a.Vertices[v].ConfigSig {
				return false
			}
			for _, u := range g.In[v] {
				if !in[u] {
					return false
				}
			}
			// Predecessors in the ancestor must also be prefix members.
			for _, u := range a.In[v] {
				if !in[u] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: LCP size never exceeds min(|V_g|, |V_a|), and LCP(g,g) = |V_g|.
func TestQuickLCPBounds(t *testing.T) {
	f := func(seed int64, gn uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 2+int(gn%40), 3)
		a := randomDAG(r, 2+int(gn%40), 3)
		n := LCPSize(g, a)
		min := g.NumVertices()
		if a.NumVertices() < min {
			min = a.NumVertices()
		}
		if n > min {
			return false
		}
		return LCPSize(g, g) == g.NumVertices()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: encode/decode roundtrip preserves architecture equality.
func TestQuickCodecRoundtrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomDAG(r, 1+int(n%50), 10)
		back, used, err := Decode(g.Encode())
		return err == nil && used == len(g.Encode()) && g.Equal(back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkLCPChain100(b *testing.B) {
	g := randomDAG(rand.New(rand.NewSource(1)), 100, 5)
	a := randomDAG(rand.New(rand.NewSource(2)), 100, 5)
	s := NewLCPScanner(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SizeAgainst(a)
	}
}

func BenchmarkLCPScannerCatalog(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	g := randomDAG(r, 60, 4)
	catalog := make([]*Compact, 256)
	for i := range catalog {
		catalog[i] = randomDAG(r, 60, 4)
	}
	s := NewLCPScanner(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		best := 0
		for _, a := range catalog {
			if n := s.SizeAgainst(a); n > best {
				best = n
			}
		}
	}
}

func TestWriteDOT(t *testing.T) {
	g := diamond()
	g.Vertices[1].Name = `block "a"\x`
	var sb strings.Builder
	if err := g.WriteDOT(&sb, "m", []VertexID{0, 1}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "n0 -> n1") {
		t.Errorf("DOT output malformed:\n%s", out)
	}
	if !strings.Contains(out, "fillcolor=lightblue") {
		t.Error("highlight missing")
	}
	if strings.Count(out, "fillcolor") != 2 {
		t.Errorf("want exactly 2 highlighted vertices:\n%s", out)
	}
	// Quotes in names must be escaped.
	if strings.Contains(out, `block "a"`) {
		t.Error("unescaped quote in DOT label")
	}
}
