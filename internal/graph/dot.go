package graph

import (
	"fmt"
	"io"
	"strings"
)

// WriteDOT renders the graph in Graphviz DOT format for inspection and
// debugging (evostore-ctl arch <id> | dot -Tsvg ...). Vertices in the
// optional highlight set (e.g. an LCP prefix) are drawn filled.
func (g *Compact) WriteDOT(w io.Writer, name string, highlight []VertexID) error {
	hl := make(map[VertexID]bool, len(highlight))
	for _, v := range highlight {
		hl[v] = true
	}
	if _, err := fmt.Fprintf(w, "digraph %q {\n  rankdir=TB;\n  node [shape=box, fontsize=10];\n", name); err != nil {
		return err
	}
	for v := range g.Vertices {
		label := g.Vertices[v].Name
		if label == "" {
			label = fmt.Sprintf("v%d", v)
		}
		label = fmt.Sprintf("%s\\nsig=%08x", escapeDOT(label), uint32(g.Vertices[v].ConfigSig))
		if b := g.Vertices[v].ParamBytes; b > 0 {
			label += fmt.Sprintf("\\n%dB", b)
		}
		attrs := fmt.Sprintf("label=\"%s\"", label)
		if hl[VertexID(v)] {
			attrs += ", style=filled, fillcolor=lightblue"
		}
		if _, err := fmt.Fprintf(w, "  n%d [%s];\n", v, attrs); err != nil {
			return err
		}
	}
	for u := range g.Out {
		for _, v := range g.Out[u] {
			if _, err := fmt.Fprintf(w, "  n%d -> n%d;\n", u, v); err != nil {
				return err
			}
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func escapeDOT(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, `"`, `\"`)
}
