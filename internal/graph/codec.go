package graph

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary layout of an encoded Compact graph:
//
//	u32 magic "EVGR"
//	u32 vertex count
//	per vertex: u64 configSig | i64 paramBytes | u16 name len | name
//	u32 edge count
//	per edge: u32 src | u32 dst
//
// Little-endian throughout. Edges are emitted in (src, dst) order so the
// encoding is canonical: equal graphs encode to equal bytes.

const graphMagic = 0x52475645 // "EVGR"

// AppendEncode appends the binary encoding of g to dst.
func (g *Compact) AppendEncode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, graphMagic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(g.Vertices)))
	for i := range g.Vertices {
		v := &g.Vertices[i]
		dst = binary.LittleEndian.AppendUint64(dst, v.ConfigSig)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.ParamBytes))
		if len(v.Name) > 0xffff {
			panic("graph: vertex name too long to encode")
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(v.Name)))
		dst = append(dst, v.Name...)
	}
	edges := 0
	for u := range g.Out {
		edges += len(g.Out[u])
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(edges))
	for u := range g.Out {
		for _, v := range g.Out[u] {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(u))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
		}
	}
	return dst
}

// Encode returns the binary encoding of g.
func (g *Compact) Encode() []byte { return g.AppendEncode(nil) }

// Decode parses an encoded graph and returns it with the number of bytes
// consumed.
//
// Decode builds the adjacency directly rather than replaying the edges
// through a Builder: all per-vertex lists are carved out of two shared
// backing arrays, and because AppendEncode emits edges in sorted (src, dst)
// order the lists come out sorted without any per-list sort. Graph decoding
// sits on the metadata read path of every Load, so its allocation count
// matters (see BENCH_bulk.json). Encodings with unsorted or duplicate edges
// (not produced by AppendEncode, but legal) are normalized after the fill.
func Decode(b []byte) (*Compact, int, error) {
	if len(b) < 8 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	if binary.LittleEndian.Uint32(b) != graphMagic {
		return nil, 0, fmt.Errorf("graph: bad magic %#x", binary.LittleEndian.Uint32(b))
	}
	n := int(binary.LittleEndian.Uint32(b[4:]))
	off := 8
	g := &Compact{
		Vertices: make([]Vertex, n),
		Out:      make([][]VertexID, n),
		In:       make([][]VertexID, n),
	}
	for i := 0; i < n; i++ {
		if len(b) < off+18 {
			return nil, 0, io.ErrUnexpectedEOF
		}
		v := &g.Vertices[i]
		v.ConfigSig = binary.LittleEndian.Uint64(b[off:])
		v.ParamBytes = int64(binary.LittleEndian.Uint64(b[off+8:]))
		nameLen := int(binary.LittleEndian.Uint16(b[off+16:]))
		off += 18
		if len(b) < off+nameLen {
			return nil, 0, io.ErrUnexpectedEOF
		}
		v.Name = string(b[off : off+nameLen])
		off += nameLen
	}
	if len(b) < off+4 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	edges := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if len(b) < off+8*edges {
		return nil, 0, io.ErrUnexpectedEOF
	}
	// Pass 1: bounds-check and count degrees.
	outDeg := make([]int32, n)
	inDeg := make([]int32, n)
	for i := 0; i < edges; i++ {
		u := binary.LittleEndian.Uint32(b[off+8*i:])
		v := binary.LittleEndian.Uint32(b[off+8*i+4:])
		if int(u) >= n || int(v) >= n {
			return nil, 0, fmt.Errorf("graph: edge (%d,%d) out of range in encoding", u, v)
		}
		outDeg[u]++
		inDeg[v]++
	}
	// Carve zero-length per-vertex lists out of shared backing arrays.
	outBack := make([]VertexID, edges)
	inBack := make([]VertexID, edges)
	o, in := 0, 0
	for v := 0; v < n; v++ {
		g.Out[v] = outBack[o:o:o+int(outDeg[v])]
		g.In[v] = inBack[in:in:in+int(inDeg[v])]
		o += int(outDeg[v])
		in += int(inDeg[v])
	}
	// Pass 2: fill. Edges arrive sorted by (src, dst), so Out lists fill in
	// ascending order and each In list sees its sources ascending too.
	sorted := true
	for i := 0; i < edges; i++ {
		u := binary.LittleEndian.Uint32(b[off+8*i:])
		v := binary.LittleEndian.Uint32(b[off+8*i+4:])
		if l := g.Out[u]; len(l) > 0 && l[len(l)-1] >= VertexID(v) {
			sorted = false
		}
		if l := g.In[v]; len(l) > 0 && l[len(l)-1] >= VertexID(u) {
			sorted = false
		}
		g.Out[u] = append(g.Out[u], VertexID(v))
		g.In[v] = append(g.In[v], VertexID(u))
	}
	off += 8 * edges
	if !sorted {
		g.normalizeAdjacency()
	}
	for v := 0; v < n; v++ {
		if len(g.In[v]) == 0 {
			g.Roots = append(g.Roots, VertexID(v))
		}
	}
	return g, off, nil
}

// normalizeAdjacency sorts every adjacency list and drops duplicate edges,
// restoring the Compact invariants for encodings that were not produced by
// AppendEncode's canonical edge order.
func (g *Compact) normalizeAdjacency() {
	dedup := func(s []VertexID) []VertexID {
		sortIDs(s)
		w := 0
		for i, x := range s {
			if i == 0 || x != s[w-1] {
				s[w] = x
				w++
			}
		}
		return s[:w]
	}
	for v := range g.Out {
		g.Out[v] = dedup(g.Out[v])
		g.In[v] = dedup(g.In[v])
	}
}
