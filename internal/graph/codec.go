package graph

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Binary layout of an encoded Compact graph:
//
//	u32 magic "EVGR"
//	u32 vertex count
//	per vertex: u64 configSig | i64 paramBytes | u16 name len | name
//	u32 edge count
//	per edge: u32 src | u32 dst
//
// Little-endian throughout. Edges are emitted in (src, dst) order so the
// encoding is canonical: equal graphs encode to equal bytes.

const graphMagic = 0x52475645 // "EVGR"

// AppendEncode appends the binary encoding of g to dst.
func (g *Compact) AppendEncode(dst []byte) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, graphMagic)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(g.Vertices)))
	for i := range g.Vertices {
		v := &g.Vertices[i]
		dst = binary.LittleEndian.AppendUint64(dst, v.ConfigSig)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(v.ParamBytes))
		if len(v.Name) > 0xffff {
			panic("graph: vertex name too long to encode")
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(v.Name)))
		dst = append(dst, v.Name...)
	}
	edges := 0
	for u := range g.Out {
		edges += len(g.Out[u])
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(edges))
	for u := range g.Out {
		for _, v := range g.Out[u] {
			dst = binary.LittleEndian.AppendUint32(dst, uint32(u))
			dst = binary.LittleEndian.AppendUint32(dst, uint32(v))
		}
	}
	return dst
}

// Encode returns the binary encoding of g.
func (g *Compact) Encode() []byte { return g.AppendEncode(nil) }

// Decode parses an encoded graph and returns it with the number of bytes
// consumed.
func Decode(b []byte) (*Compact, int, error) {
	if len(b) < 8 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	if binary.LittleEndian.Uint32(b) != graphMagic {
		return nil, 0, fmt.Errorf("graph: bad magic %#x", binary.LittleEndian.Uint32(b))
	}
	n := int(binary.LittleEndian.Uint32(b[4:]))
	off := 8
	bld := NewBuilder(n)
	for i := 0; i < n; i++ {
		if len(b) < off+18 {
			return nil, 0, io.ErrUnexpectedEOF
		}
		var v Vertex
		v.ConfigSig = binary.LittleEndian.Uint64(b[off:])
		v.ParamBytes = int64(binary.LittleEndian.Uint64(b[off+8:]))
		nameLen := int(binary.LittleEndian.Uint16(b[off+16:]))
		off += 18
		if len(b) < off+nameLen {
			return nil, 0, io.ErrUnexpectedEOF
		}
		v.Name = string(b[off : off+nameLen])
		off += nameLen
		bld.AddVertex(v)
	}
	if len(b) < off+4 {
		return nil, 0, io.ErrUnexpectedEOF
	}
	edges := int(binary.LittleEndian.Uint32(b[off:]))
	off += 4
	if len(b) < off+8*edges {
		return nil, 0, io.ErrUnexpectedEOF
	}
	for i := 0; i < edges; i++ {
		u := binary.LittleEndian.Uint32(b[off:])
		v := binary.LittleEndian.Uint32(b[off+4:])
		off += 8
		if int(u) >= n || int(v) >= n {
			return nil, 0, fmt.Errorf("graph: edge (%d,%d) out of range in encoding", u, v)
		}
		bld.AddEdge(VertexID(u), VertexID(v))
	}
	return bld.Build(), off, nil
}
