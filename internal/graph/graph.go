// Package graph implements EvoStore's compact leaf-layer architecture
// graphs and the longest-common-prefix (LCP) query of paper Algorithm 1.
//
// A Compact graph is the result of flattening a recursive DL model into its
// leaf layers: every vertex is one leaf layer, identified by a dense ID
// assigned in deterministic breadth-first order from the input. Because the
// flattening order is deterministic, two models that share a structural
// prefix assign identical IDs to the shared vertices, which lets Algorithm 1
// index both graphs with a single ID space exactly as the paper's pseudocode
// does.
package graph

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"slices"
	"sort"
)

// VertexID identifies a leaf layer inside one compact graph. IDs are dense:
// 0..len(Vertices)-1, assigned in flattening (BFS) order.
type VertexID uint32

// Vertex is one leaf layer of a flattened model.
type Vertex struct {
	// ConfigSig is a content hash of the leaf layer's architectural
	// configuration (kind + hyperparameters + parameter shapes), NOT of its
	// weights. Two vertices match for LCP purposes iff their ConfigSigs are
	// equal. Layer names deliberately do not contribute (paper §4.2:
	// identical names may describe different configs and vice versa).
	ConfigSig uint64
	// Name is the human-readable layer path ("block2/conv1"); informational.
	Name string
	// ParamBytes is the total size of this layer's parameter tensors. It is
	// carried in the graph so storage accounting and LCP-size decisions can
	// run without touching tensor data.
	ParamBytes int64
}

// Compact is the flattened leaf-layer architecture graph of one model.
type Compact struct {
	Vertices []Vertex
	// Out[v] lists the successors of v in ascending order.
	Out [][]VertexID
	// In[v] lists the predecessors of v in ascending order.
	In [][]VertexID
	// Roots lists vertices with no predecessors (model inputs), ascending.
	Roots []VertexID
}

// NumVertices returns the number of leaf layers.
func (g *Compact) NumVertices() int { return len(g.Vertices) }

// TotalParamBytes returns the summed parameter size over all vertices.
func (g *Compact) TotalParamBytes() int64 {
	var n int64
	for i := range g.Vertices {
		n += g.Vertices[i].ParamBytes
	}
	return n
}

// InDegree returns the number of predecessors of v.
func (g *Compact) InDegree(v VertexID) int { return len(g.In[v]) }

// HasEdge reports whether the edge u→v exists. Out lists are sorted, so the
// check is a binary search.
func (g *Compact) HasEdge(u, v VertexID) bool {
	out := g.Out[u]
	i := sort.Search(len(out), func(i int) bool { return out[i] >= v })
	return i < len(out) && out[i] == v
}

// Builder incrementally constructs a Compact graph. Vertices must be added
// in flattening order; edges may reference only existing vertices.
type Builder struct {
	g     Compact
	edges map[[2]VertexID]bool
}

// NewBuilder returns an empty Builder with capacity hints.
func NewBuilder(vertexHint int) *Builder {
	return &Builder{
		g: Compact{
			Vertices: make([]Vertex, 0, vertexHint),
			Out:      make([][]VertexID, 0, vertexHint),
			In:       make([][]VertexID, 0, vertexHint),
		},
		edges: make(map[[2]VertexID]bool, vertexHint*2),
	}
}

// AddVertex appends a vertex and returns its ID.
func (b *Builder) AddVertex(v Vertex) VertexID {
	id := VertexID(len(b.g.Vertices))
	b.g.Vertices = append(b.g.Vertices, v)
	b.g.Out = append(b.g.Out, nil)
	b.g.In = append(b.g.In, nil)
	return id
}

// AddEdge inserts the edge u→v. Duplicate edges are ignored. It panics on
// out-of-range IDs; the flattener controls both endpoints.
func (b *Builder) AddEdge(u, v VertexID) {
	n := VertexID(len(b.g.Vertices))
	if u >= n || v >= n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range, %d vertices", u, v, n))
	}
	key := [2]VertexID{u, v}
	if b.edges[key] {
		return
	}
	b.edges[key] = true
	b.g.Out[u] = append(b.g.Out[u], v)
	b.g.In[v] = append(b.g.In[v], u)
}

// Build finalizes and returns the graph. The Builder must not be used after
// Build.
func (b *Builder) Build() *Compact {
	g := &b.g
	for v := range g.Out {
		sortIDs(g.Out[v])
		sortIDs(g.In[v])
	}
	g.Roots = g.Roots[:0]
	for v := range g.Vertices {
		if len(g.In[v]) == 0 {
			g.Roots = append(g.Roots, VertexID(v))
		}
	}
	return g
}

func sortIDs(s []VertexID) { slices.Sort(s) }

// Validate checks structural invariants: dense IDs, sorted adjacency,
// In/Out symmetry, acyclicity, and root consistency.
func (g *Compact) Validate() error {
	n := len(g.Vertices)
	if len(g.Out) != n || len(g.In) != n {
		return fmt.Errorf("graph: adjacency length mismatch: %d vertices, %d out, %d in",
			n, len(g.Out), len(g.In))
	}
	for u := range g.Out {
		for i, v := range g.Out[u] {
			if int(v) >= n {
				return fmt.Errorf("graph: out edge %d→%d out of range", u, v)
			}
			if i > 0 && g.Out[u][i-1] >= v {
				return fmt.Errorf("graph: out list of %d not strictly ascending", u)
			}
			if !containsID(g.In[v], VertexID(u)) {
				return fmt.Errorf("graph: edge %d→%d missing from in-list", u, v)
			}
		}
	}
	for v := range g.In {
		for i, u := range g.In[v] {
			if int(u) >= n {
				return fmt.Errorf("graph: in edge %d←%d out of range", v, u)
			}
			if i > 0 && g.In[v][i-1] >= u {
				return fmt.Errorf("graph: in list of %d not strictly ascending", v)
			}
			if !containsID(g.Out[u], VertexID(v)) {
				return fmt.Errorf("graph: edge %d→%d missing from out-list", u, v)
			}
		}
	}
	for _, r := range g.Roots {
		if int(r) >= n || len(g.In[r]) != 0 {
			return fmt.Errorf("graph: bad root %d", r)
		}
	}
	roots := 0
	for v := range g.Vertices {
		if len(g.In[v]) == 0 {
			roots++
		}
	}
	if roots != len(g.Roots) {
		return fmt.Errorf("graph: %d zero-in-degree vertices but %d roots", roots, len(g.Roots))
	}
	if err := g.checkAcyclic(); err != nil {
		return err
	}
	return nil
}

func containsID(s []VertexID, x VertexID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= x })
	return i < len(s) && s[i] == x
}

func (g *Compact) checkAcyclic() error {
	n := len(g.Vertices)
	indeg := make([]int, n)
	for v := range g.In {
		indeg[v] = len(g.In[v])
	}
	queue := make([]VertexID, 0, n)
	for v := 0; v < n; v++ {
		if indeg[v] == 0 {
			queue = append(queue, VertexID(v))
		}
	}
	seen := 0
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		seen++
		for _, v := range g.Out[u] {
			indeg[v]--
			if indeg[v] == 0 {
				queue = append(queue, v)
			}
		}
	}
	if seen != n {
		return fmt.Errorf("graph: cycle detected (%d of %d vertices reachable in topological order)", seen, n)
	}
	return nil
}

// Fingerprint returns a structural hash of the graph (config signatures and
// edges, not names). Two graphs with equal fingerprints have identical
// architecture with overwhelming probability; used to dedup catalogs.
func (g *Compact) Fingerprint() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	for v := range g.Vertices {
		binary.LittleEndian.PutUint64(buf[:], g.Vertices[v].ConfigSig)
		h.Write(buf[:])
		for _, w := range g.Out[v] {
			binary.LittleEndian.PutUint64(buf[:], uint64(v)<<32|uint64(w))
			h.Write(buf[:])
		}
	}
	return h.Sum64()
}

// Equal reports whether two graphs are architecturally identical: same
// vertex count, same per-vertex ConfigSig, same edges. Names and sizes are
// ignored, mirroring what LCP matching considers.
func (g *Compact) Equal(o *Compact) bool {
	if len(g.Vertices) != len(o.Vertices) {
		return false
	}
	for v := range g.Vertices {
		if g.Vertices[v].ConfigSig != o.Vertices[v].ConfigSig {
			return false
		}
		if len(g.Out[v]) != len(o.Out[v]) {
			return false
		}
		for i := range g.Out[v] {
			if g.Out[v][i] != o.Out[v][i] {
				return false
			}
		}
	}
	return true
}

// Clone returns a deep copy of the graph.
func (g *Compact) Clone() *Compact {
	c := &Compact{
		Vertices: append([]Vertex(nil), g.Vertices...),
		Out:      make([][]VertexID, len(g.Out)),
		In:       make([][]VertexID, len(g.In)),
		Roots:    append([]VertexID(nil), g.Roots...),
	}
	for v := range g.Out {
		c.Out[v] = append([]VertexID(nil), g.Out[v]...)
		c.In[v] = append([]VertexID(nil), g.In[v]...)
	}
	return c
}
