package rpc

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// vecServer echoes and inspects vectored bulk payloads.
func vecServer() *Server {
	s := NewServer()
	// Echo the request bulk back as a vectored response: three chunks.
	s.Register("vececho", func(_ context.Context, req Message) (Message, error) {
		flat := req.BulkFlat()
		n := len(flat)
		return Message{
			Meta:    req.Meta,
			BulkVec: [][]byte{flat[:n/3], flat[n/3 : 2*n/3], flat[2*n/3:]},
		}, nil
	})
	// Sum every byte of the logical payload, however it is sliced.
	s.Register("vecsum", func(_ context.Context, req Message) (Message, error) {
		var n byte
		for _, s := range req.BulkSlices() {
			for _, b := range s {
				n += b
			}
		}
		return Message{Meta: []byte{n}}, nil
	})
	return s
}

func TestMessageBulkHelpers(t *testing.T) {
	flat := Message{Bulk: []byte{1, 2, 3}}
	if flat.BulkLen() != 3 {
		t.Errorf("flat BulkLen = %d", flat.BulkLen())
	}
	if got := flat.BulkFlat(); &got[0] != &flat.Bulk[0] {
		t.Error("BulkFlat of a flat message must alias, not copy")
	}

	vec := Message{BulkVec: [][]byte{{1, 2}, {3}, nil, {4, 5}}}
	if vec.BulkLen() != 5 {
		t.Errorf("vec BulkLen = %d", vec.BulkLen())
	}
	if got := vec.BulkFlat(); !bytes.Equal(got, []byte{1, 2, 3, 4, 5}) {
		t.Errorf("vec BulkFlat = %v", got)
	}

	// Mixed: Bulk leads, BulkVec follows.
	mixed := Message{Bulk: []byte{9}, BulkVec: [][]byte{{8}}}
	if mixed.BulkLen() != 2 {
		t.Errorf("mixed BulkLen = %d", mixed.BulkLen())
	}
	sl := mixed.BulkSlices()
	if len(sl) != 2 || &sl[0][0] != &mixed.Bulk[0] || &sl[1][0] != &mixed.BulkVec[0][0] {
		t.Error("BulkSlices must alias Bulk then BulkVec entries")
	}

	var empty Message
	if empty.BulkLen() != 0 || empty.BulkFlat() != nil || empty.BulkSlices() != nil {
		t.Error("empty message bulk helpers must be zero-valued")
	}
}

func TestBufPool(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 1 << bufPoolMinClass},
		{4096, 4096},
		{4097, 8192},
		{1 << 20, 1 << 20},
		{(1 << 20) + 1, 1 << 21},
	}
	for _, c := range cases {
		b := getBuf(c.n)
		if len(b) != c.n {
			t.Errorf("getBuf(%d) len = %d", c.n, len(b))
		}
		if cap(b) != c.wantCap {
			t.Errorf("getBuf(%d) cap = %d, want %d", c.n, cap(b), c.wantCap)
		}
		putBuf(b)
	}
	// Outside the class range: plain allocation, putBuf ignores it.
	huge := getBuf((1 << bufPoolMaxClass) + 1)
	if len(huge) != (1<<bufPoolMaxClass)+1 {
		t.Errorf("oversize getBuf len = %d", len(huge))
	}
	putBuf(huge)
	putBuf(nil)
	putBuf(make([]byte, 100)) // non-power-of-two cap: must be ignored, not pooled
}

// TestTCPVectoredBulk round-trips vectored payloads over TCP, below and
// above the writev threshold, and checks the frame is identical to a flat
// send (the receiver cannot tell).
func TestTCPVectoredBulk(t *testing.T) {
	lis, addr, err := ListenAndServeTCP("127.0.0.1:0", vecServer())
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	c, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	for _, size := range []int{100, 64 << 10, vecFlushThreshold + 1, 4 << 20} {
		flat := make([]byte, size)
		for i := range flat {
			flat[i] = byte(i * 31)
		}
		// Slice the payload into uneven chunks.
		vec := [][]byte{flat[:size/5], flat[size/5 : size/2], flat[size/2:]}

		respVec, err := c.Call(ctx, "vececho", Message{Meta: []byte("m"), BulkVec: vec})
		if err != nil {
			t.Fatalf("size %d vectored: %v", size, err)
		}
		respFlat, err := c.Call(ctx, "vececho", Message{Meta: []byte("m"), Bulk: flat})
		if err != nil {
			t.Fatalf("size %d flat: %v", size, err)
		}
		if !bytes.Equal(respVec.Bulk, flat) {
			t.Fatalf("size %d: vectored round trip corrupted", size)
		}
		if !bytes.Equal(respFlat.Bulk, flat) {
			t.Fatalf("size %d: flat round trip corrupted", size)
		}
	}

	// The caller's vector must not be consumed by the writev path.
	big := make([]byte, 1<<20)
	vec := [][]byte{big[:1000], big[1000:]}
	msg := Message{BulkVec: vec}
	if _, err := c.Call(ctx, "vecsum", msg); err != nil {
		t.Fatal(err)
	}
	if len(msg.BulkVec[0]) != 1000 || len(msg.BulkVec[1]) != len(big)-1000 {
		t.Error("Call consumed the caller's BulkVec slice headers")
	}
}

// TestInprocVectoredAliases checks the in-process fabric passes vectored
// payloads by reference, like it does flat ones.
func TestInprocVectoredAliases(t *testing.T) {
	net := NewInprocNet()
	srv := NewServer()
	var got [][]byte
	srv.Register("keep", func(_ context.Context, req Message) (Message, error) {
		got = req.BulkVec
		return Message{}, nil
	})
	net.Listen("p", srv)
	c, _ := net.Dial("p")
	a, b := []byte{1, 2}, []byte{3}
	if _, err := c.Call(context.Background(), "keep", Message{BulkVec: [][]byte{a, b}}); err != nil {
		t.Fatal(err)
	}
	if &got[0][0] != &a[0] || &got[1][0] != &b[0] {
		t.Error("in-proc transport copied the vectored payload")
	}
}

// oversizedVec fakes a payload larger than MaxFrame without allocating it,
// by repeating references to one buffer.
func oversizedVec() [][]byte {
	chunk := make([]byte, 1<<20)
	vec := make([][]byte, (MaxFrame>>20)+1)
	for i := range vec {
		vec[i] = chunk
	}
	return vec
}

func TestTCPSendOversizeRejectedTyped(t *testing.T) {
	lis, addr, err := ListenAndServeTCP("127.0.0.1:0", vecServer())
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	c, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	_, err = c.Call(ctx, "vecsum", Message{BulkVec: oversizedVec()})
	if !IsFrameTooLarge(err) {
		t.Fatalf("oversized send = %v, want ErrFrameTooLarge", err)
	}
	if IsTransient(err) {
		t.Error("ErrFrameTooLarge must classify as permanent")
	}
	// Nothing touched the wire: the connection must still work.
	if _, err := c.Call(ctx, "vecsum", Message{Bulk: []byte{1}}); err != nil {
		t.Fatalf("call after rejected oversize: %v", err)
	}
}

func TestTCPOversizedResponseIsRemoteError(t *testing.T) {
	srv := NewServer()
	srv.Register("huge", func(_ context.Context, _ Message) (Message, error) {
		return Message{BulkVec: oversizedVec()}, nil
	})
	srv.Register("ok", func(_ context.Context, _ Message) (Message, error) {
		return Message{Meta: []byte("fine")}, nil
	})
	lis, addr, err := ListenAndServeTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	c, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()

	_, err = c.Call(ctx, "huge", Message{})
	if err == nil || !IsRemote(err) {
		t.Fatalf("oversized response = %v, want remote error", err)
	}
	if !strings.Contains(err.Error(), "frame exceeds size limit") {
		t.Errorf("error does not name the size limit: %v", err)
	}
	// The server converted the oversize to an error frame instead of a torn
	// frame: the same connection must still serve requests.
	if _, err := c.Call(ctx, "ok", Message{}); err != nil {
		t.Fatalf("call after oversized response: %v", err)
	}
}

func TestPoolKeepsConnOnFrameTooLarge(t *testing.T) {
	lis, addr, err := ListenAndServeTCP("127.0.0.1:0", vecServer())
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	dials := 0
	p := NewPool(addr, 1, func(a string) (Conn, error) {
		dials++
		return DialTCP(a)
	})
	defer p.Close()
	ctx := context.Background()

	if _, err := p.Call(ctx, "vecsum", Message{Bulk: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Call(ctx, "vecsum", Message{BulkVec: oversizedVec()}); !IsFrameTooLarge(err) {
		t.Fatalf("oversized via pool = %v", err)
	}
	if _, err := p.Call(ctx, "vecsum", Message{Bulk: []byte{2}}); err != nil {
		t.Fatal(err)
	}
	if dials != 1 {
		t.Errorf("pool redialed after a rejected oversize (%d dials, want 1)", dials)
	}
}

// TestFaultConnVectoredSchedule checks fault decisions are independent of
// payload shape: the same seed produces the same drop schedule for flat
// and vectored senders, and surviving vectored payloads arrive intact.
func TestFaultConnVectoredSchedule(t *testing.T) {
	net := NewInprocNet()
	net.Listen("p", vecServer())
	mk := func() *FaultConn {
		c, err := net.Dial("p")
		if err != nil {
			t.Fatal(err)
		}
		return WithFaults(c, FaultConfig{Seed: 99, DropRequest: 0.3, DropResponse: 0.2})
	}
	flatConn, vecConn := mk(), mk()
	payload := []byte{1, 2, 3, 4, 5}
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		_, errFlat := flatConn.Call(ctx, "vecsum", Message{Bulk: payload})
		respVec, errVec := vecConn.Call(ctx, "vecsum", Message{BulkVec: [][]byte{payload[:2], payload[2:]}})
		if (errFlat == nil) != (errVec == nil) {
			t.Fatalf("call %d: drop schedule diverged between flat (%v) and vectored (%v)", i, errFlat, errVec)
		}
		if errVec == nil && respVec.Meta[0] != 15 {
			t.Fatalf("call %d: vectored payload corrupted through fault wrapper (sum %d)", i, respVec.Meta[0])
		}
	}
}
