package rpc

import (
	"context"
	"sync"
	"sync/atomic"
)

// Client-side receive-frame leasing.
//
// The server side of the TCP transport has always pooled its receive
// buffers: a request frame has one well-defined recycle point (the
// response write). Client-side response buffers never had one — Call hands
// them to the caller, decoded views (proto.SplitBulk, tensor.Decode) alias
// them, and nothing knows when the last view dies. Frame supplies the
// missing mechanism: a refcounted lease on one pooled receive buffer.
// Every holder of a view into the frame retains a reference; when the last
// reference is released the buffer goes back to the transport's receive
// pool. A holder that forgets to release never corrupts anything — the
// frame simply stays out of the pool and the GC reclaims it like any other
// allocation — so leasing is an opt-in optimization, not a new obligation
// for existing callers.
//
// Opting in is per call, via context: WithFrameSink attaches a sink, and a
// TCP connection that sees one reads the response's bulk payload into a
// pooled buffer and deposits the frame (reference count 1, owned by the
// caller) in the sink. Wrapping connections (Pool, resilient.Conn,
// FaultConn) pass contexts through untouched, so the opt-in tunnels
// through every middleware without widening the Conn interface. Transports
// without pooled receive paths (in-process, where buffers are shared by
// reference and owned by the server) simply leave the sink empty; callers
// must treat a nil frame as "no lease needed".

// Frame is a refcounted lease on one pooled receive buffer. The response
// bulk payload of the call that produced it aliases Bytes(); every
// retained view must hold a reference via Retain/Release. Safe for
// concurrent use.
type Frame struct {
	buf  []byte
	refs atomic.Int32
}

// NewFrame wraps buf in a frame with one outstanding reference. When the
// last reference is released the buffer is returned to the transport's
// receive pool (when its capacity matches a pool class; anything else is
// left to the GC).
func NewFrame(buf []byte) *Frame {
	f := &Frame{buf: buf}
	f.refs.Store(1)
	return f
}

// Bytes returns the leased buffer. Valid only while the caller holds a
// reference.
func (f *Frame) Bytes() []byte { return f.buf }

// Retain takes one more reference. The frame must currently be live
// (references > 0).
func (f *Frame) Retain() {
	if f == nil {
		return
	}
	if f.refs.Add(1) <= 1 {
		panic("rpc: Frame.Retain after final release")
	}
}

// Release drops one reference; the last release recycles the buffer into
// the receive pool. Releasing more times than retained is a bug and
// panics: a silent extra release would recycle a buffer somebody still
// aliases.
func (f *Frame) Release() {
	if f == nil {
		return
	}
	switch n := f.refs.Add(-1); {
	case n == 0:
		buf := f.buf
		f.buf = nil
		putBuf(buf)
	case n < 0:
		panic("rpc: Frame.Release without matching reference")
	}
}

// Refs reports the current reference count (tests and accounting).
func (f *Frame) Refs() int32 {
	if f == nil {
		return 0
	}
	return f.refs.Load()
}

// FrameSink receives the leased receive frame of one Call. One sink serves
// one logical call at a time: a retry that succeeds after an earlier
// attempt already deposited a frame replaces (and releases) the stale one,
// so middleware like resilient.Conn needs no frame awareness at all.
type FrameSink struct {
	mu sync.Mutex
	f  *Frame
}

// set deposits f, releasing any previously deposited frame (a failed
// earlier attempt whose response was produced and then discarded by a
// middleware layer).
func (s *FrameSink) set(f *Frame) {
	s.mu.Lock()
	old := s.f
	s.f = f
	s.mu.Unlock()
	old.Release()
}

// Take removes and returns the deposited frame (nil when the call's
// transport does not pool receive buffers, or the response had no bulk
// payload). The caller owns the frame's reference and must Release it —
// after a failed call, immediately.
func (s *FrameSink) Take() *Frame {
	s.mu.Lock()
	f := s.f
	s.f = nil
	s.mu.Unlock()
	return f
}

type frameSinkKey struct{}

// WithFrameSink opts the next Call on the returned context into leased
// receive frames: a pooling transport will read the response bulk into a
// pooled buffer and deposit its Frame in the sink. The response Message's
// Bulk aliases the frame, so the caller must Release the frame only after
// every view into the response is dead (or hand it to a longer-lived
// lease holder, e.g. the client's segment cache).
func WithFrameSink(ctx context.Context) (context.Context, *FrameSink) {
	s := &FrameSink{}
	return context.WithValue(ctx, frameSinkKey{}, s), s
}

// frameSinkFrom extracts the sink, if any.
func frameSinkFrom(ctx context.Context) *FrameSink {
	s, _ := ctx.Value(frameSinkKey{}).(*FrameSink)
	return s
}
