package rpc

import (
	"bytes"
	"context"
	"testing"
)

// TestFrameLeaseOverTCP proves the opt-in contract: without a sink the
// bulk is a plain allocation and no frame appears; with one, the bulk
// aliases a pooled frame whose final release recycles the buffer.
func TestFrameLeaseOverTCP(t *testing.T) {
	srv := NewServer()
	payload := bytes.Repeat([]byte{0xAB}, 10<<10)
	srv.Register("echo", func(_ context.Context, req Message) (Message, error) {
		return Message{Meta: []byte("ok"), Bulk: payload}, nil
	})
	lis, addr, err := ListenAndServeTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	conn, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// No sink: no frame machinery involved.
	resp, err := conn.Call(context.Background(), "echo", Message{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Bulk, payload) {
		t.Fatal("plain call corrupted bulk")
	}

	// Sink attached: bulk aliases the frame, refcount 1, release recycles.
	ctx, sink := WithFrameSink(context.Background())
	resp, err = conn.Call(ctx, "echo", Message{})
	if err != nil {
		t.Fatal(err)
	}
	f := sink.Take()
	if f == nil {
		t.Fatal("no frame deposited for a bulk response")
	}
	if &resp.Bulk[0] != &f.Bytes()[0] {
		t.Fatal("response bulk does not alias the leased frame")
	}
	if !bytes.Equal(resp.Bulk, payload) {
		t.Fatal("leased call corrupted bulk")
	}
	if f.Refs() != 1 {
		t.Fatalf("fresh frame refcount %d, want 1", f.Refs())
	}
	f.Retain()
	f.Release()
	if f.Refs() != 1 {
		t.Fatalf("refcount after retain+release %d, want 1", f.Refs())
	}
	f.Release()
	if f.Refs() != 0 {
		t.Fatalf("refcount after final release %d, want 0", f.Refs())
	}
	if f.Bytes() != nil {
		t.Fatal("released frame still exposes its buffer")
	}

	// A meta-only response deposits nothing.
	srv.Register("meta", func(_ context.Context, req Message) (Message, error) {
		return Message{Meta: []byte("m")}, nil
	})
	ctx, sink = WithFrameSink(context.Background())
	if _, err := conn.Call(ctx, "meta", Message{}); err != nil {
		t.Fatal(err)
	}
	if f := sink.Take(); f != nil {
		t.Fatal("frame deposited for a bulk-less response")
	}
}

// TestFrameSinkReplacesStaleFrame pins the retry contract: a second
// deposit releases the first frame (a middleware discarded that attempt's
// response), so retries cannot strand pooled buffers.
func TestFrameSinkReplacesStaleFrame(t *testing.T) {
	s := &FrameSink{}
	f1 := NewFrame(make([]byte, 8))
	f2 := NewFrame(make([]byte, 8))
	s.set(f1)
	s.set(f2)
	if f1.Refs() != 0 {
		t.Fatalf("stale frame refcount %d, want 0", f1.Refs())
	}
	if got := s.Take(); got != f2 {
		t.Fatal("sink lost the live frame")
	}
	if f2.Refs() != 1 {
		t.Fatalf("live frame refcount %d, want 1", f2.Refs())
	}
	f2.Release()
	if s.Take() != nil {
		t.Fatal("Take did not clear the sink")
	}
}
