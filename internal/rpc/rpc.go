// Package rpc is EvoStore's communication substrate, modeled on the
// Mochi/Mercury/Thallium stack the paper builds on: small control RPCs
// paired with large bulk transfers (the RDMA analogue).
//
// A Message separates the two: Meta is the small control payload that rides
// the RPC itself; the bulk payload is the consolidated tensor data that a
// real deployment would move with registered-memory RDMA. Bulk carries it
// as one flat slice; BulkVec carries it as an ordered vector of slices
// (scatter-gather), which lets senders ship per-segment buffers without
// concatenating them first. The wire format is identical either way: the
// frame carries one total length followed by the bytes in order. The
// in-process transport passes both by reference (zero copy, like an RDMA
// pull from registered memory); the TCP transport streams the vector with
// a single writev (net.Buffers). Both transports count control messages
// and bulk bytes so experiments can attribute costs.
//
// Paper counterpart: the Mochi Mercury/Thallium RPC + RDMA layer (§4.2).
//
// Contracts:
//   - Thread safety: Server, every Conn implementation, Pool, FaultConn
//     and the helpers in this package are safe for concurrent use.
//   - Idempotency: the transport retries nothing by itself. A Call that
//     returns a transient error (see IsTransient) may or may not have
//     executed on the server; callers must only retry operations that are
//     idempotent or carry a proto request ID for provider-side dedup.
//     The resilient package builds that policy on top of this one.
//   - Errors: handler failures cross the wire as remote errors (IsRemote);
//     everything else is a transport failure. IsTransient classifies both
//     for retry decisions.
//   - Buffer ownership (the aliasing contract the zero-copy path relies
//     on): request buffers handed to a Handler are owned by the transport;
//     a handler may alias them in its *response* (echo-style), but must
//     copy anything it retains after the response has been written —
//     the TCP transport recycles request frames into a buffer pool at that
//     point. Response buffers passed back by a handler must stay immutable
//     until the transport has written them. On the client side, response
//     buffers returned by Call are owned by the caller and by default are
//     never pooled or recycled; a caller that attaches a frame sink
//     (WithFrameSink) instead receives the bulk payload as a refcounted
//     lease on a pooled receive buffer (Frame) and controls the recycle
//     point itself. Request buffers passed to Call must stay immutable
//     until Call returns but are never retained afterwards by the TCP
//     transport.
//     The in-process transport passes references end to end, so both sides
//     see each other's live buffers — the same rules keep that safe.
package rpc

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Message is one RPC payload: small control metadata plus an optional bulk
// payload. The logical bulk payload is Bulk followed by the BulkVec slices
// in order; senders normally set at most one of the two. BulkVec is the
// scatter-gather form: per-segment buffers travel as-is (by reference
// in-process, via one writev on TCP) without being concatenated. Receivers
// of the TCP transport always see the payload as one flat Bulk slice;
// receivers of the in-process transport see whatever shape the sender
// built.
type Message struct {
	Meta    []byte
	Bulk    []byte
	BulkVec [][]byte
}

// BulkLen returns the total bulk payload length in bytes (Bulk plus every
// BulkVec slice).
func (m *Message) BulkLen() int {
	n := len(m.Bulk)
	for _, s := range m.BulkVec {
		n += len(s)
	}
	return n
}

// BulkSlices returns the bulk payload as an ordered vector of slices
// without copying: Bulk first (when non-empty), then the BulkVec entries.
// The returned slices alias the message's buffers.
func (m *Message) BulkSlices() [][]byte {
	if len(m.Bulk) == 0 {
		return m.BulkVec
	}
	if len(m.BulkVec) == 0 {
		return [][]byte{m.Bulk}
	}
	out := make([][]byte, 0, 1+len(m.BulkVec))
	out = append(out, m.Bulk)
	return append(out, m.BulkVec...)
}

// BulkFlat returns the bulk payload as one contiguous slice. When the
// payload is already flat the slice is returned as-is (aliasing the
// message); a vectored payload is concatenated into a fresh buffer. Prefer
// BulkSlices (or proto.SplitBulkMsg) on hot paths.
func (m *Message) BulkFlat() []byte {
	if len(m.BulkVec) == 0 {
		return m.Bulk
	}
	out := make([]byte, 0, m.BulkLen())
	out = append(out, m.Bulk...)
	for _, s := range m.BulkVec {
		out = append(out, s...)
	}
	return out
}

// Handler processes one request. Handlers must be safe for concurrent use.
// The returned message's buffers must not be mutated after return.
type Handler func(ctx context.Context, req Message) (Message, error)

// Server dispatches named RPCs to handlers, like a Thallium provider
// object.
type Server struct {
	mu       sync.RWMutex
	handlers map[string]Handler
	stats    Stats
	// reqTimeout bounds handler execution for requests arriving without a
	// caller deadline (nanoseconds; 0 = unlimited). Set via SetRequestTimeout.
	reqTimeout atomic.Int64
}

// SetRequestTimeout bounds handler execution for requests that arrive
// without a deadline of their own (e.g. over the TCP transport, which does
// not propagate client deadlines across the wire). Zero disables the bound.
func (s *Server) SetRequestTimeout(d time.Duration) {
	s.reqTimeout.Store(int64(d))
}

// NewServer returns an empty server.
func NewServer() *Server {
	return &Server{handlers: make(map[string]Handler)}
}

// Register installs a handler under name. Re-registering replaces.
func (s *Server) Register(name string, h Handler) {
	s.mu.Lock()
	s.handlers[name] = h
	s.mu.Unlock()
}

// dispatch looks up and invokes the handler.
func (s *Server) dispatch(ctx context.Context, name string, req Message) (Message, error) {
	s.mu.RLock()
	h := s.handlers[name]
	s.mu.RUnlock()
	if h == nil {
		return Message{}, fmt.Errorf("rpc: no handler %q", name)
	}
	if d := time.Duration(s.reqTimeout.Load()); d > 0 {
		if _, has := ctx.Deadline(); !has {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, d)
			defer cancel()
		}
	}
	atomic.AddUint64(&s.stats.Calls, 1)
	atomic.AddUint64(&s.stats.BulkInBytes, uint64(req.BulkLen()))
	resp, err := h(ctx, req)
	if err == nil {
		atomic.AddUint64(&s.stats.BulkOutBytes, uint64(resp.BulkLen()))
	}
	return resp, err
}

// Stats counts server-side traffic.
type Stats struct {
	Calls        uint64
	BulkInBytes  uint64
	BulkOutBytes uint64
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Calls:        atomic.LoadUint64(&s.stats.Calls),
		BulkInBytes:  atomic.LoadUint64(&s.stats.BulkInBytes),
		BulkOutBytes: atomic.LoadUint64(&s.stats.BulkOutBytes),
	}
}

// Conn is a client connection to one server endpoint. Implementations are
// safe for concurrent Calls.
type Conn interface {
	// Call invokes the named handler and returns its response.
	Call(ctx context.Context, name string, req Message) (Message, error)
	// Addr returns the endpoint address the connection targets.
	Addr() string
	// Close releases the connection.
	Close() error
}

// ErrClosed is returned by calls on a closed connection or transport.
var ErrClosed = errors.New("rpc: closed")

// remoteError wraps an error string returned by a remote handler.
type remoteError struct{ msg string }

func (e *remoteError) Error() string { return "rpc: remote: " + e.msg }

// IsRemote reports whether err originated in a remote handler (as opposed
// to a transport failure).
func IsRemote(err error) bool {
	var re *remoteError
	return errors.As(err, &re)
}

// Broadcast invokes the named handler on every connection concurrently and
// returns the responses in connection order. Each slot carries either a
// response or an error; Broadcast itself only fails on ctx cancellation.
// This is the client side of the paper's provider-side collective queries.
func Broadcast(ctx context.Context, conns []Conn, name string, req Message) []Result {
	results := make([]Result, len(conns))
	var wg sync.WaitGroup
	for i, c := range conns {
		wg.Add(1)
		go func(i int, c Conn) {
			defer wg.Done()
			resp, err := c.Call(ctx, name, req)
			results[i] = Result{Resp: resp, Err: err}
		}(i, c)
	}
	wg.Wait()
	return results
}

// Result is one slot of a Broadcast reply.
type Result struct {
	Resp Message
	Err  error
}

// Reduce folds broadcast results with fn, skipping errored slots. It
// returns the folded value and the number of successful slots.
func Reduce[T any](results []Result, zero T, fn func(acc T, r Message) T) (T, int) {
	acc := zero
	ok := 0
	for _, r := range results {
		if r.Err != nil {
			continue
		}
		acc = fn(acc, r.Resp)
		ok++
	}
	return acc, ok
}
