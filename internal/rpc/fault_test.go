package rpc

import (
	"context"
	"errors"
	"testing"

	"repro/internal/metrics"
)

func echoConn(t *testing.T) Conn {
	t.Helper()
	srv := NewServer()
	srv.Register("echo", func(_ context.Context, req Message) (Message, error) {
		return Message{Meta: req.Meta}, nil
	})
	n := NewInprocNet()
	if err := n.Listen("a", srv); err != nil {
		t.Fatal(err)
	}
	c, err := n.Dial("a")
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestFaultDropRateAndDeterminism(t *testing.T) {
	run := func(seed int64) (failures int, schedule []bool) {
		f := WithFaults(echoConn(t), FaultConfig{Seed: seed, DropRequest: 0.3, Registry: metrics.NewRegistry()})
		for i := 0; i < 1000; i++ {
			_, err := f.Call(context.Background(), "echo", Message{})
			schedule = append(schedule, err != nil)
			if err != nil {
				if !errors.Is(err, ErrInjected) || !IsTransient(err) {
					t.Fatalf("injected error misclassified: %v", err)
				}
				failures++
			}
		}
		return failures, schedule
	}
	n1, s1 := run(7)
	n2, s2 := run(7)
	if n1 != n2 {
		t.Fatalf("same seed, different drop counts: %d vs %d", n1, n2)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("same seed, schedules diverge at call %d", i)
		}
	}
	// ~30% of 1000; allow generous slack.
	if n1 < 200 || n1 > 400 {
		t.Errorf("drop rate off: %d/1000 dropped at p=0.3", n1)
	}
	if n3, _ := run(8); n3 == n1 {
		t.Logf("different seeds coincided (possible but unlikely): %d", n3)
	}
}

func TestFaultDropResponseExecutesHandler(t *testing.T) {
	srv := NewServer()
	executed := 0
	srv.Register("inc", func(context.Context, Message) (Message, error) {
		executed++
		return Message{}, nil
	})
	n := NewInprocNet()
	n.Listen("a", srv)
	inner, _ := n.Dial("a")
	f := WithFaults(inner, FaultConfig{Seed: 1, DropResponse: 1, Registry: metrics.NewRegistry()})
	_, err := f.Call(context.Background(), "inc", Message{})
	if err == nil || !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if executed != 1 {
		t.Fatalf("handler executed %d times; response drop must execute exactly once", executed)
	}
}

func TestFaultPartitionSwitch(t *testing.T) {
	f := WithFaults(echoConn(t), FaultConfig{Registry: metrics.NewRegistry()})
	if _, err := f.Call(context.Background(), "echo", Message{}); err != nil {
		t.Fatalf("zero config injected a fault: %v", err)
	}
	f.SetPartitioned(true)
	if _, err := f.Call(context.Background(), "echo", Message{}); !errors.Is(err, ErrInjected) {
		t.Fatalf("partitioned call: %v", err)
	}
	f.SetPartitioned(false)
	if _, err := f.Call(context.Background(), "echo", Message{}); err != nil {
		t.Fatalf("healed call: %v", err)
	}
}

func TestErrorClassification(t *testing.T) {
	remote := &remoteError{msg: "handler said no"}
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{ErrClosed, false},
		{remote, false},
		{context.DeadlineExceeded, true},
		{ErrInjected, true},
		{ErrUnavailable, true},
		{errors.New("connection reset by peer"), true},
		{MarkTransient(remote), true},
	}
	for i, tc := range cases {
		if got := IsTransient(tc.err); got != tc.want {
			t.Errorf("case %d: IsTransient(%v) = %v, want %v", i, tc.err, got, tc.want)
		}
	}
}
