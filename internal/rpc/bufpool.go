package rpc

import (
	"math/bits"
	"sync"
)

// Size-classed receive-buffer pool for the TCP transport's server side.
//
// Every request a server connection reads needs a meta buffer and (often) a
// bulk buffer; without reuse a provider serving a bulk-heavy workload
// allocates gigabytes per second just to receive frames. Buffers are drawn
// from power-of-two size classes and recycled once the response for the
// request has been fully written — the point after which the buffer-
// ownership contract (see the package comment) forbids anyone from still
// aliasing the request.
//
// Client-side response buffers are pooled only on request: by default Call
// hands the caller a fresh allocation it may retain indefinitely
// (tensor.Decode and proto.SplitBulk alias their inputs — the transport
// never sees a safe recycle point). A caller that attaches a frame sink
// (WithFrameSink, see frame.go) receives the bulk payload as a refcounted
// Frame lease on a pooled buffer instead and defines the recycle point
// itself by releasing the last reference.

const (
	// bufPoolMinClass and bufPoolMaxClass bound the pooled size classes:
	// 4 KiB up to 64 MiB. Smaller buffers are cheap enough to allocate;
	// larger ones are rare enough that pinning them in a pool would cost
	// more memory than the allocations save.
	bufPoolMinClass = 12 // 1<<12 = 4 KiB
	bufPoolMaxClass = 26 // 1<<26 = 64 MiB
)

var bufPools [bufPoolMaxClass + 1]sync.Pool

// bufClass returns the size-class exponent for a buffer of n bytes, or -1
// when n is outside the pooled range.
func bufClass(n int) int {
	if n <= 0 || n > 1<<bufPoolMaxClass {
		return -1
	}
	c := bits.Len(uint(n - 1)) // ceil(log2(n))
	if c < bufPoolMinClass {
		c = bufPoolMinClass
	}
	return c
}

// getBuf returns a length-n buffer, drawn from the pool when a size class
// covers n and freshly allocated otherwise.
func getBuf(n int) []byte {
	c := bufClass(n)
	if c < 0 {
		return make([]byte, n)
	}
	if v := bufPools[c].Get(); v != nil {
		return (*v.(*[]byte))[:n]
	}
	return make([]byte, n, 1<<c)
}

// putBuf recycles a buffer previously returned by getBuf. Buffers whose
// capacity is not an exact pooled class (e.g. plain allocations) are left
// to the GC. Callers must guarantee nothing aliases b anymore.
func putBuf(b []byte) {
	c := bufClass(cap(b))
	if c < 0 || cap(b) != 1<<c {
		return
	}
	b = b[:0]
	bufPools[c].Put(&b)
}
