package rpc

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
)

// FaultConfig describes the failure behaviour a FaultConn injects. All
// probabilities are in [0,1] and are drawn from a private RNG seeded with
// Seed, so a given seed reproduces the exact same failure schedule —
// table stakes for debugging a resilience test.
type FaultConfig struct {
	// Seed initializes the RNG. Equal seeds give equal schedules.
	Seed int64
	// DropRequest is the probability a call fails before reaching the
	// wrapped connection (the request was lost: the handler never ran).
	DropRequest float64
	// DropResponse is the probability a call executes on the wrapped
	// connection but its response is discarded and an error returned (the
	// reply was lost: the handler DID run). This is the failure mode that
	// makes blind retries of non-idempotent operations unsafe.
	DropResponse float64
	// Delay (± DelayJitter) is added to every surviving call.
	Delay       time.Duration
	DelayJitter time.Duration
	// Registry counts injected faults; nil uses metrics.Default.
	Registry *metrics.Registry
}

// FaultConn wraps a Conn with configurable fault injection: request drops,
// response drops, added delay and a hard partition switch. Tests and
// evostore-bench use it to exercise the resilience middleware against a
// misbehaving fabric. All injected failures classify as transient and wrap
// ErrInjected. Payloads pass through untouched — a vectored bulk payload
// (Message.BulkVec) reaches the wrapped connection with the exact same
// slice headers, and fault decisions never depend on payload shape, so
// flat and vectored frames are dropped/delayed on identical schedules.
type FaultConn struct {
	inner Conn
	cfg   FaultConfig

	mu          sync.Mutex
	rng         *rand.Rand
	partitioned bool

	drops, respDrops, partitionRejects *metrics.Counter
}

// WithFaults wraps conn. A zero config injects nothing (but the partition
// switch still works).
func WithFaults(conn Conn, cfg FaultConfig) *FaultConn {
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.Default
	}
	return &FaultConn{
		inner:            conn,
		cfg:              cfg,
		rng:              rand.New(rand.NewSource(cfg.Seed)),
		drops:            reg.Counter("fault.drop_request"),
		respDrops:        reg.Counter("fault.drop_response"),
		partitionRejects: reg.Counter("fault.partition_reject"),
	}
}

// SetPartitioned switches the hard partition: while set, every call fails
// immediately, as if the provider fell off the fabric.
func (f *FaultConn) SetPartitioned(on bool) {
	f.mu.Lock()
	f.partitioned = on
	f.mu.Unlock()
}

// Partitioned reports the partition switch state.
func (f *FaultConn) Partitioned() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.partitioned
}

// roll draws the per-call fault decisions under one lock so concurrent
// callers see a deterministic interleaving-independent marginal rate.
func (f *FaultConn) roll() (partitioned, dropReq, dropResp bool, delay time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.partitioned {
		return true, false, false, 0
	}
	dropReq = f.cfg.DropRequest > 0 && f.rng.Float64() < f.cfg.DropRequest
	dropResp = !dropReq && f.cfg.DropResponse > 0 && f.rng.Float64() < f.cfg.DropResponse
	delay = f.cfg.Delay
	if f.cfg.DelayJitter > 0 {
		delay += time.Duration(f.rng.Int63n(int64(2*f.cfg.DelayJitter))) - f.cfg.DelayJitter
	}
	return false, dropReq, dropResp, delay
}

// Call implements Conn.
func (f *FaultConn) Call(ctx context.Context, name string, req Message) (Message, error) {
	partitioned, dropReq, dropResp, delay := f.roll()
	if partitioned {
		f.partitionRejects.Inc()
		return Message{}, fmt.Errorf("%w: %s partitioned", ErrInjected, f.inner.Addr())
	}
	if delay > 0 {
		select {
		case <-time.After(delay):
		case <-ctx.Done():
			return Message{}, ctx.Err()
		}
	}
	if dropReq {
		f.drops.Inc()
		return Message{}, fmt.Errorf("%w: request to %s dropped", ErrInjected, f.inner.Addr())
	}
	resp, err := f.inner.Call(ctx, name, req)
	if dropResp && err == nil {
		f.respDrops.Inc()
		return Message{}, fmt.Errorf("%w: response from %s dropped", ErrInjected, f.inner.Addr())
	}
	return resp, err
}

// Addr implements Conn.
func (f *FaultConn) Addr() string { return f.inner.Addr() }

// Close implements Conn.
func (f *FaultConn) Close() error { return f.inner.Close() }

var _ Conn = (*FaultConn)(nil)
