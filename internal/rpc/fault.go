package rpc

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/metrics"
)

// FaultConfig describes the failure behaviour a FaultConn injects. All
// probabilities are in [0,1] and are drawn from a private RNG seeded with
// Seed, so a given seed reproduces the exact same failure schedule —
// table stakes for debugging a resilience test.
type FaultConfig struct {
	// Seed initializes the RNG. Equal seeds give equal schedules.
	Seed int64
	// DropRequest is the probability a call fails before reaching the
	// wrapped connection (the request was lost: the handler never ran).
	DropRequest float64
	// DropResponse is the probability a call executes on the wrapped
	// connection but its response is discarded and an error returned (the
	// reply was lost: the handler DID run). This is the failure mode that
	// makes blind retries of non-idempotent operations unsafe.
	DropResponse float64
	// Delay (± DelayJitter) is added to every surviving call.
	Delay       time.Duration
	DelayJitter time.Duration
	// Registry counts injected faults; nil uses metrics.Default.
	Registry *metrics.Registry
}

// SlowProfile describes a gray-failed node: alive, answering, but slow.
// While installed via SetSlow, every surviving call's injected delay is
// multiplied by Factor, inflated by Extra (± Jitter, from the same seeded
// RNG as the drop schedule), and bulk payload bytes are charged against
// BandwidthBps on both legs — the request's bulk before the wrapped call,
// the response's bulk after it. All of it is context-cancellable: a call
// whose deadline expires mid-delay stops paying immediately.
type SlowProfile struct {
	// Factor multiplies the configured base Delay (1 = unchanged). The
	// canonical gray failure is Factor 10–50: well under any timeout,
	// far over the fleet median.
	Factor float64
	// Extra is a flat additional per-call latency.
	Extra time.Duration
	// Jitter widens Extra by a uniform draw from [-Jitter, +Jitter].
	Jitter time.Duration
	// BandwidthBps throttles bulk frame bytes (0 = unconstrained),
	// modeling a degraded NIC that still carries small control frames
	// at tolerable speed but crawls through segment payloads.
	BandwidthBps float64
}

// FaultConn wraps a Conn with configurable fault injection: request drops,
// response drops, added delay, a hard partition switch, and a gray-failure
// slow-node mode. Tests and evostore-bench use it to exercise the
// resilience middleware against a misbehaving fabric. All injected
// failures classify as transient and wrap ErrInjected. Payloads pass
// through untouched — a vectored bulk payload (Message.BulkVec) reaches
// the wrapped connection with the exact same slice headers, and fault
// decisions never depend on payload shape (only on payload *length*, in
// slow mode's bandwidth model), so flat and vectored frames are
// dropped/delayed on identical schedules.
type FaultConn struct {
	inner Conn
	cfg   FaultConfig

	mu          sync.Mutex
	rng         *rand.Rand
	partitioned bool
	slow        *SlowProfile

	drops, respDrops, partitionRejects, slowCalls *metrics.Counter
}

// WithFaults wraps conn. A zero config injects nothing (but the partition
// switch still works).
func WithFaults(conn Conn, cfg FaultConfig) *FaultConn {
	reg := cfg.Registry
	if reg == nil {
		reg = metrics.Default
	}
	return &FaultConn{
		inner:            conn,
		cfg:              cfg,
		rng:              rand.New(rand.NewSource(cfg.Seed)),
		drops:            reg.Counter("fault.drop_request"),
		respDrops:        reg.Counter("fault.drop_response"),
		partitionRejects: reg.Counter("fault.partition_reject"),
		slowCalls:        reg.Counter("fault.slow_call"),
	}
}

// SetPartitioned switches the hard partition: while set, every call fails
// immediately, as if the provider fell off the fabric.
func (f *FaultConn) SetPartitioned(on bool) {
	f.mu.Lock()
	f.partitioned = on
	f.mu.Unlock()
}

// Partitioned reports the partition switch state.
func (f *FaultConn) Partitioned() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.partitioned
}

// SetSlow installs (or, with nil, clears) the gray-failure profile. The
// change applies to subsequent calls; in-flight delays are unaffected.
func (f *FaultConn) SetSlow(p *SlowProfile) {
	f.mu.Lock()
	f.slow = p
	f.mu.Unlock()
}

// Slow reports whether a gray-failure profile is installed.
func (f *FaultConn) Slow() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.slow != nil
}

// faultPlan is one call's drawn fault decisions.
type faultPlan struct {
	partitioned, dropReq, dropResp bool
	delay                          time.Duration
	slow                           bool
	bandwidthBps                   float64
}

// roll draws the per-call fault decisions under one lock so concurrent
// callers see a deterministic interleaving-independent marginal rate.
func (f *FaultConn) roll() faultPlan {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.partitioned {
		return faultPlan{partitioned: true}
	}
	var p faultPlan
	p.dropReq = f.cfg.DropRequest > 0 && f.rng.Float64() < f.cfg.DropRequest
	p.dropResp = !p.dropReq && f.cfg.DropResponse > 0 && f.rng.Float64() < f.cfg.DropResponse
	p.delay = f.cfg.Delay
	if f.cfg.DelayJitter > 0 {
		p.delay += time.Duration(f.rng.Int63n(int64(2*f.cfg.DelayJitter))) - f.cfg.DelayJitter
	}
	if s := f.slow; s != nil {
		p.slow = true
		if s.Factor > 1 {
			p.delay = time.Duration(float64(p.delay) * s.Factor)
		}
		p.delay += s.Extra
		if s.Jitter > 0 {
			p.delay += time.Duration(f.rng.Int63n(int64(2*s.Jitter))) - s.Jitter
		}
		p.bandwidthBps = s.BandwidthBps
	}
	if p.delay < 0 {
		p.delay = 0
	}
	return p
}

// bulkDelay is the time n bulk bytes take at the plan's bandwidth.
func (p faultPlan) bulkDelay(n int) time.Duration {
	if p.bandwidthBps <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / p.bandwidthBps * float64(time.Second))
}

// Call implements Conn.
func (f *FaultConn) Call(ctx context.Context, name string, req Message) (Message, error) {
	plan := f.roll()
	if plan.partitioned {
		f.partitionRejects.Inc()
		return Message{}, fmt.Errorf("%w: %s partitioned", ErrInjected, f.inner.Addr())
	}
	if plan.slow {
		f.slowCalls.Inc()
	}
	if err := sleepCtx(ctx, plan.delay+plan.bulkDelay(req.BulkLen())); err != nil {
		return Message{}, err
	}
	if plan.dropReq {
		f.drops.Inc()
		return Message{}, fmt.Errorf("%w: request to %s dropped", ErrInjected, f.inner.Addr())
	}
	resp, err := f.inner.Call(ctx, name, req)
	if plan.dropResp && err == nil {
		f.respDrops.Inc()
		return Message{}, fmt.Errorf("%w: response from %s dropped", ErrInjected, f.inner.Addr())
	}
	if err == nil {
		if serr := sleepCtx(ctx, plan.bulkDelay(resp.BulkLen())); serr != nil {
			return Message{}, serr
		}
	}
	return resp, err
}

// Addr implements Conn.
func (f *FaultConn) Addr() string { return f.inner.Addr() }

// Close implements Conn.
func (f *FaultConn) Close() error { return f.inner.Close() }

var _ Conn = (*FaultConn)(nil)
