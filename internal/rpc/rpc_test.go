package rpc

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func echoServer() *Server {
	s := NewServer()
	s.Register("echo", func(_ context.Context, req Message) (Message, error) {
		return Message{Meta: req.Meta, Bulk: req.Bulk}, nil
	})
	s.Register("fail", func(_ context.Context, req Message) (Message, error) {
		return Message{}, errors.New("boom")
	})
	s.Register("sum", func(_ context.Context, req Message) (Message, error) {
		var n byte
		for _, b := range req.Bulk {
			n += b
		}
		return Message{Meta: []byte{n}}, nil
	})
	return s
}

// runConnContract exercises the behaviour all Conn implementations share.
func runConnContract(t *testing.T, c Conn) {
	t.Helper()
	ctx := context.Background()

	meta := []byte("control")
	bulk := bytes.Repeat([]byte{7}, 1<<16)
	resp, err := c.Call(ctx, "echo", Message{Meta: meta, Bulk: bulk})
	if err != nil {
		t.Fatalf("echo: %v", err)
	}
	if !bytes.Equal(resp.Meta, meta) || !bytes.Equal(resp.Bulk, bulk) {
		t.Fatal("echo mismatch")
	}

	// Empty payloads.
	resp, err = c.Call(ctx, "echo", Message{})
	if err != nil || len(resp.Meta) != 0 || len(resp.Bulk) != 0 {
		t.Fatalf("empty echo: %v %d %d", err, len(resp.Meta), len(resp.Bulk))
	}

	// Remote handler error.
	_, err = c.Call(ctx, "fail", Message{})
	if err == nil || !IsRemote(err) {
		t.Fatalf("fail: err=%v IsRemote=%v", err, IsRemote(err))
	}
	// The connection must survive a remote error.
	if _, err := c.Call(ctx, "echo", Message{Meta: []byte("x")}); err != nil {
		t.Fatalf("call after remote error: %v", err)
	}

	// Unknown handler.
	if _, err := c.Call(ctx, "nope", Message{}); err == nil {
		t.Fatal("unknown handler accepted")
	}

	// Cancelled context.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := c.Call(cctx, "echo", Message{}); err == nil {
		t.Fatal("cancelled context accepted")
	}
}

func TestInprocConnContract(t *testing.T) {
	net := NewInprocNet()
	if err := net.Listen("p0", echoServer()); err != nil {
		t.Fatal(err)
	}
	c, err := net.Dial("p0")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	runConnContract(t, c)
}

func TestTCPConnContract(t *testing.T) {
	lis, addr, err := ListenAndServeTCP("127.0.0.1:0", echoServer())
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	c, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	runConnContract(t, c)
}

func TestPoolContract(t *testing.T) {
	lis, addr, err := ListenAndServeTCP("127.0.0.1:0", echoServer())
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	p := NewPool(addr, 4, DialTCP)
	defer p.Close()
	runConnContract(t, p)
}

func TestInprocZeroCopyBulk(t *testing.T) {
	net := NewInprocNet()
	srv := NewServer()
	var got []byte
	srv.Register("keep", func(_ context.Context, req Message) (Message, error) {
		got = req.Bulk // hold a reference: in-proc bulk must alias
		return Message{}, nil
	})
	net.Listen("p", srv)
	c, _ := net.Dial("p")
	bulk := []byte{1, 2, 3}
	c.Call(context.Background(), "keep", Message{Bulk: bulk})
	if &got[0] != &bulk[0] {
		t.Error("in-proc transport copied the bulk payload")
	}
}

func TestInprocDialErrors(t *testing.T) {
	net := NewInprocNet()
	if _, err := net.Dial("missing"); err == nil {
		t.Error("Dial to unbound address succeeded")
	}
	srv := echoServer()
	net.Listen("a", srv)
	if err := net.Listen("a", srv); err == nil {
		t.Error("duplicate Listen accepted")
	}
	c, _ := net.Dial("a")
	net.Unlisten("a")
	if _, err := c.Call(context.Background(), "echo", Message{}); err == nil {
		t.Error("call to unbound address succeeded")
	}
}

func TestClosedConnRejectsCalls(t *testing.T) {
	net := NewInprocNet()
	net.Listen("a", echoServer())
	c, _ := net.Dial("a")
	c.Close()
	if _, err := c.Call(context.Background(), "echo", Message{}); !errors.Is(err, ErrClosed) {
		t.Errorf("call on closed conn = %v, want ErrClosed", err)
	}
}

func TestServerStats(t *testing.T) {
	net := NewInprocNet()
	srv := echoServer()
	net.Listen("a", srv)
	c, _ := net.Dial("a")
	c.Call(context.Background(), "echo", Message{Bulk: make([]byte, 100)})
	c.Call(context.Background(), "echo", Message{Bulk: make([]byte, 50)})
	st := srv.Stats()
	if st.Calls != 2 || st.BulkInBytes != 150 || st.BulkOutBytes != 150 {
		t.Errorf("stats = %+v", st)
	}
}

func TestTCPConcurrentCallsViaPool(t *testing.T) {
	lis, addr, err := ListenAndServeTCP("127.0.0.1:0", echoServer())
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	p := NewPool(addr, 8, DialTCP)
	defer p.Close()

	var wg sync.WaitGroup
	var failures atomic.Int32
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				payload := []byte(fmt.Sprintf("w%d-i%d", w, i))
				resp, err := p.Call(context.Background(), "echo", Message{Meta: payload})
				if err != nil || !bytes.Equal(resp.Meta, payload) {
					failures.Add(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if failures.Load() != 0 {
		t.Errorf("%d workers failed", failures.Load())
	}
}

func TestTCPLargeBulk(t *testing.T) {
	lis, addr, err := ListenAndServeTCP("127.0.0.1:0", echoServer())
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	c, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	bulk := make([]byte, 8<<20)
	for i := range bulk {
		bulk[i] = byte(i * 2654435761)
	}
	resp, err := c.Call(context.Background(), "echo", Message{Bulk: bulk})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resp.Bulk, bulk) {
		t.Error("large bulk corrupted")
	}
}

func TestTCPDeadline(t *testing.T) {
	srv := NewServer()
	srv.Register("slow", func(ctx context.Context, _ Message) (Message, error) {
		time.Sleep(300 * time.Millisecond)
		return Message{}, nil
	})
	lis, addr, err := ListenAndServeTCP("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	c, err := DialTCP(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, "slow", Message{}); err == nil {
		t.Error("deadline not enforced")
	}
}

func TestBroadcastAndReduce(t *testing.T) {
	net := NewInprocNet()
	for i := 0; i < 4; i++ {
		srv := NewServer()
		val := byte(i + 1)
		srv.Register("val", func(_ context.Context, _ Message) (Message, error) {
			return Message{Meta: []byte{val}}, nil
		})
		net.Listen(fmt.Sprintf("p%d", i), srv)
	}
	var conns []Conn
	for i := 0; i < 4; i++ {
		c, err := net.Dial(fmt.Sprintf("p%d", i))
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	results := Broadcast(context.Background(), conns, "val", Message{})
	if len(results) != 4 {
		t.Fatalf("results = %d", len(results))
	}
	sum, ok := Reduce(results, 0, func(acc int, m Message) int { return acc + int(m.Meta[0]) })
	if ok != 4 || sum != 10 {
		t.Errorf("Reduce = %d over %d, want 10 over 4", sum, ok)
	}
}

func TestBroadcastPartialFailure(t *testing.T) {
	net := NewInprocNet()
	good := NewServer()
	good.Register("q", func(_ context.Context, _ Message) (Message, error) {
		return Message{Meta: []byte{1}}, nil
	})
	bad := NewServer()
	bad.Register("q", func(_ context.Context, _ Message) (Message, error) {
		return Message{}, errors.New("provider down")
	})
	net.Listen("good", good)
	net.Listen("bad", bad)
	cg, _ := net.Dial("good")
	cb, _ := net.Dial("bad")
	results := Broadcast(context.Background(), []Conn{cg, cb}, "q", Message{})
	sum, ok := Reduce(results, 0, func(acc int, m Message) int { return acc + int(m.Meta[0]) })
	if ok != 1 || sum != 1 {
		t.Errorf("Reduce over partial failure = %d/%d", sum, ok)
	}
	if results[1].Err == nil {
		t.Error("failed slot carries no error")
	}
}

func BenchmarkInprocCall(b *testing.B) {
	net := NewInprocNet()
	net.Listen("p", echoServer())
	c, _ := net.Dial("p")
	msg := Message{Meta: []byte("m"), Bulk: make([]byte, 4096)}
	ctx := context.Background()
	b.SetBytes(4096)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(ctx, "echo", msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTCPCall64K(b *testing.B) {
	lis, addr, err := ListenAndServeTCP("127.0.0.1:0", echoServer())
	if err != nil {
		b.Fatal(err)
	}
	defer lis.Close()
	c, err := DialTCP(addr)
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	msg := Message{Bulk: make([]byte, 64<<10)}
	ctx := context.Background()
	b.SetBytes(64 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(ctx, "echo", msg); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPoolSurvivesServerRestart(t *testing.T) {
	lis, addr, err := ListenAndServeTCP("127.0.0.1:0", echoServer())
	if err != nil {
		t.Fatal(err)
	}
	p := NewPool(addr, 2, DialTCP)
	defer p.Close()
	ctx := context.Background()
	if _, err := p.Call(ctx, "echo", Message{Meta: []byte("a")}); err != nil {
		t.Fatal(err)
	}
	// Kill the listener: in-pool connections die.
	lis.Close()
	// Restart on the same address (retry briefly; the port may linger).
	var lis2 interface{ Close() error }
	for i := 0; i < 50; i++ {
		l, _, err := ListenAndServeTCP(addr, echoServer())
		if err == nil {
			lis2 = l
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if lis2 == nil {
		t.Skip("could not rebind test port")
	}
	defer lis2.Close()
	// The pool discards dead connections on transport errors and redials:
	// within a few calls service must resume.
	ok := false
	for i := 0; i < 10; i++ {
		if _, err := p.Call(ctx, "echo", Message{Meta: []byte("b")}); err == nil {
			ok = true
			break
		}
	}
	if !ok {
		t.Error("pool did not recover after server restart")
	}
}

func TestWithLatency(t *testing.T) {
	net := NewInprocNet()
	net.Listen("p", echoServer())
	raw, _ := net.Dial("p")
	const rtt = 30 * time.Millisecond
	c := WithLatency(raw, rtt)
	start := time.Now()
	if _, err := c.Call(context.Background(), "echo", Message{}); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < rtt {
		t.Errorf("call took %v, want ≥%v", d, rtt)
	}
	// Cancellation during the latency wait.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, err := c.Call(ctx, "echo", Message{}); err == nil {
		t.Error("latency wrapper ignored context cancellation")
	}
	// Zero latency returns the original connection.
	if WithLatency(raw, 0) != raw {
		t.Error("zero-latency wrap should be a no-op")
	}
}
