package rpc

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// sleepCtx blocks for d or until ctx is done, whichever comes first. A
// context that is already expired returns its error immediately without
// charging any of the delay — an injected delay must never make a
// dead call look slower than it was. The timer is stopped on early
// cancellation so mid-flight aborts don't accumulate live timers.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if d <= 0 {
		return nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WithLatency wraps a connection so every Call pays an additional fixed
// round-trip delay. Experiment harnesses use it to emulate a datacenter
// fabric RTT on loopback transports, whose real RTT is otherwise orders of
// magnitude below any deployed network — which would hide exactly the
// effects (chained metadata round trips, per-tensor request storms) that
// the paper's design avoids. Equivalent to WithLatencyProfile with the
// whole RTT charged on the request leg and no jitter.
func WithLatency(conn Conn, rtt time.Duration) Conn {
	return WithLatencyProfile(conn, LatencyProfile{Request: rtt})
}

// LatencyProfile shapes the delay WithLatencyProfile injects. Request is
// charged before the wrapped call, Response after it returns, modeling
// asymmetric paths (small request frame out, bulk response back). Jitter
// adds a uniform draw from [-Jitter, +Jitter] to each nonzero leg, from a
// private RNG seeded with Seed so a given seed reproduces the schedule.
type LatencyProfile struct {
	Request  time.Duration
	Response time.Duration
	Jitter   time.Duration
	Seed     int64
}

// WithLatencyProfile wraps a connection with the given latency shape. A
// profile with no positive field returns conn unchanged.
func WithLatencyProfile(conn Conn, p LatencyProfile) Conn {
	if p.Request <= 0 && p.Response <= 0 && p.Jitter <= 0 {
		return conn
	}
	lc := &latencyConn{Conn: conn, p: p}
	if p.Jitter > 0 {
		lc.rng = rand.New(rand.NewSource(p.Seed))
	}
	return lc
}

type latencyConn struct {
	Conn
	p LatencyProfile

	mu  sync.Mutex
	rng *rand.Rand
}

// leg returns base with the profile's jitter applied, clamped at zero.
func (c *latencyConn) leg(base time.Duration) time.Duration {
	if c.rng == nil {
		return base
	}
	c.mu.Lock()
	d := base + time.Duration(c.rng.Int63n(int64(2*c.p.Jitter))) - c.p.Jitter
	c.mu.Unlock()
	if d < 0 {
		return 0
	}
	return d
}

func (c *latencyConn) Call(ctx context.Context, name string, req Message) (Message, error) {
	if err := sleepCtx(ctx, c.leg(c.p.Request)); err != nil {
		return Message{}, err
	}
	resp, err := c.Conn.Call(ctx, name, req)
	if err != nil {
		return resp, err
	}
	if c.p.Response > 0 || c.rng != nil {
		if err := sleepCtx(ctx, c.leg(c.p.Response)); err != nil {
			return Message{}, err
		}
	}
	return resp, err
}
