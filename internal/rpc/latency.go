package rpc

import (
	"context"
	"time"
)

// WithLatency wraps a connection so every Call pays an additional fixed
// round-trip delay. Experiment harnesses use it to emulate a datacenter
// fabric RTT on loopback transports, whose real RTT is otherwise orders of
// magnitude below any deployed network — which would hide exactly the
// effects (chained metadata round trips, per-tensor request storms) that
// the paper's design avoids.
func WithLatency(conn Conn, rtt time.Duration) Conn {
	if rtt <= 0 {
		return conn
	}
	return &latencyConn{Conn: conn, rtt: rtt}
}

type latencyConn struct {
	Conn
	rtt time.Duration
}

func (c *latencyConn) Call(ctx context.Context, name string, req Message) (Message, error) {
	select {
	case <-time.After(c.rtt):
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
	return c.Conn.Call(ctx, name, req)
}
