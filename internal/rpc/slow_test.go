package rpc

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/metrics"
)

// Regression (gray-failure PR): an injected delay must not be charged when
// the caller's context is already expired — the call should fail
// immediately with the context error, for FaultConn and WithLatency alike.
func TestInjectedDelayNotChargedWhenContextExpired(t *testing.T) {
	const delay = 30 * time.Second // far beyond any sane test runtime
	conns := map[string]Conn{
		"fault":   WithFaults(echoConn(t), FaultConfig{Delay: delay, Registry: metrics.NewRegistry()}),
		"latency": WithLatency(echoConn(t), delay),
	}
	for name, conn := range conns {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		start := time.Now()
		_, err := conn.Call(ctx, "echo", Message{})
		if elapsed := time.Since(start); elapsed > time.Second {
			t.Errorf("%s: expired context still charged %v of injected delay", name, elapsed)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: want context.Canceled, got %v", name, err)
		}
	}
}

// Regression: cancelling mid-delay must abort the sleep promptly rather
// than letting the injected delay run to completion.
func TestInjectedDelayCancellable(t *testing.T) {
	const delay = 30 * time.Second
	conns := map[string]Conn{
		"fault":   WithFaults(echoConn(t), FaultConfig{Delay: delay, Registry: metrics.NewRegistry()}),
		"latency": WithLatencyProfile(echoConn(t), LatencyProfile{Request: delay, Jitter: time.Millisecond}),
	}
	for name, conn := range conns {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		start := time.Now()
		go func() {
			_, err := conn.Call(ctx, "echo", Message{})
			done <- err
		}()
		time.Sleep(10 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if !errors.Is(err, context.Canceled) {
				t.Errorf("%s: want context.Canceled, got %v", name, err)
			}
			if elapsed := time.Since(start); elapsed > 5*time.Second {
				t.Errorf("%s: cancellation took %v, delay was not interruptible", name, elapsed)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: call still blocked in injected delay after cancel", name)
		}
	}
}

// WithLatency must keep its original contract: rtt <= 0 is a no-op wrap,
// and a positive rtt charges exactly one pre-call sleep (no response leg,
// no jitter).
func TestWithLatencySingleRTTContract(t *testing.T) {
	inner := echoConn(t)
	if got := WithLatency(inner, 0); got != inner {
		t.Fatalf("WithLatency(conn, 0) must return conn unchanged, got %T", got)
	}
	const rtt = 20 * time.Millisecond
	conn := WithLatency(inner, rtt)
	lc, ok := conn.(*latencyConn)
	if !ok {
		t.Fatalf("WithLatency returned %T", conn)
	}
	if lc.p.Response != 0 || lc.p.Jitter != 0 || lc.rng != nil {
		t.Fatalf("WithLatency must not gain a response leg or jitter: %+v", lc.p)
	}
	start := time.Now()
	if _, err := conn.Call(context.Background(), "echo", Message{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < rtt {
		t.Fatalf("call took %v, want >= %v", elapsed, rtt)
	}
}

// The asymmetric profile charges the response leg only after a successful
// call, and jitter draws are deterministic per seed.
func TestLatencyProfileAsymmetric(t *testing.T) {
	const req, resp = 10 * time.Millisecond, 15 * time.Millisecond
	conn := WithLatencyProfile(echoConn(t), LatencyProfile{Request: req, Response: resp})
	start := time.Now()
	if _, err := conn.Call(context.Background(), "echo", Message{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < req+resp {
		t.Fatalf("call took %v, want >= %v", elapsed, req+resp)
	}

	draw := func(seed int64) []time.Duration {
		lc := WithLatencyProfile(echoConn(t), LatencyProfile{Request: time.Millisecond, Jitter: time.Millisecond, Seed: seed}).(*latencyConn)
		var out []time.Duration
		for i := 0; i < 32; i++ {
			out = append(out, lc.leg(lc.p.Request))
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("jitter draw %d differs across equal seeds: %v vs %v", i, a[i], b[i])
		}
		if a[i] < 0 {
			t.Fatalf("jitter draw %d went negative: %v", i, a[i])
		}
	}
}

// SlowProfile inflates the base delay, charges bulk bytes against the
// bandwidth cap on both legs, and clears cleanly with SetSlow(nil).
func TestSlowProfileInflatesAndClears(t *testing.T) {
	reg := metrics.NewRegistry()
	f := WithFaults(echoConn(t), FaultConfig{Delay: time.Millisecond, Registry: reg})

	// Healthy: a call is fast and does not count as slow.
	if _, err := f.Call(context.Background(), "echo", Message{}); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("fault.slow_call").Load(); n != 0 {
		t.Fatalf("healthy call counted as slow: %d", n)
	}

	f.SetSlow(&SlowProfile{Factor: 20})
	if !f.Slow() {
		t.Fatal("Slow() false after SetSlow")
	}
	start := time.Now()
	if _, err := f.Call(context.Background(), "echo", Message{}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("slow call took %v, want >= 20ms (20x base 1ms)", elapsed)
	}
	if n := reg.Counter("fault.slow_call").Load(); n != 1 {
		t.Fatalf("fault.slow_call = %d, want 1", n)
	}

	// Bandwidth: 64 KiB of request bulk at 1 MiB/s is a ~62ms charge.
	f.SetSlow(&SlowProfile{Factor: 1, BandwidthBps: 1 << 20})
	start = time.Now()
	if _, err := f.Call(context.Background(), "echo", Message{Bulk: make([]byte, 64<<10)}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 50*time.Millisecond {
		t.Fatalf("bulk call under bandwidth cap took %v, want >= 50ms", elapsed)
	}

	f.SetSlow(nil)
	if f.Slow() {
		t.Fatal("Slow() true after SetSlow(nil)")
	}
	start = time.Now()
	if _, err := f.Call(context.Background(), "echo", Message{Bulk: make([]byte, 64<<10)}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("healed call still slow: %v", elapsed)
	}
}

// The slow-mode delay schedule is deterministic for equal seeds.
func TestSlowProfileDeterministic(t *testing.T) {
	draw := func(seed int64) []time.Duration {
		f := WithFaults(echoConn(t), FaultConfig{Seed: seed, Delay: time.Millisecond, Registry: metrics.NewRegistry()})
		f.SetSlow(&SlowProfile{Factor: 3, Extra: time.Millisecond, Jitter: time.Millisecond})
		var out []time.Duration
		for i := 0; i < 64; i++ {
			out = append(out, f.roll().delay)
		}
		return out
	}
	a, b := draw(11), draw(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("slow delay %d differs across equal seeds: %v vs %v", i, a[i], b[i])
		}
	}
}
