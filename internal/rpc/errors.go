package rpc

import (
	"context"
	"errors"
)

// Error classification for the resilience layer. Every RPC failure falls
// in one of two classes:
//
//   - Transient: the transport failed (socket died, dial refused, injected
//     fault, per-attempt deadline expired) and the caller cannot know
//     whether the handler executed. Retrying is reasonable, but only for
//     idempotent operations or requests carrying a dedup ID (proto attaches
//     one to IncRef/DecRef/Retire/StoreModel so providers can answer a
//     retry from their dedup table instead of re-executing).
//   - Permanent: the handler executed and returned an application error
//     (remoteError), or the caller itself gave up (context.Canceled, a
//     closed local connection). Retrying would re-fail or is unwanted.
//
// ErrUnavailable and ErrInjected exist so tests and callers can match the
// middleware's own failures with errors.Is.
var (
	// ErrUnavailable is returned by the resilience middleware when a
	// provider's circuit breaker is open and the call was shed without
	// touching the network.
	ErrUnavailable = errors.New("rpc: provider unavailable (circuit open)")

	// ErrInjected is the cause of every failure produced by a fault
	// wrapper. It classifies as transient.
	ErrInjected = errors.New("rpc: injected fault")

	// ErrFrameTooLarge is returned when a payload's length field would
	// exceed MaxFrame, checked on the send side before any byte is
	// written: the frame is never emitted, so the connection stays
	// usable. Servers report an oversized *response* to the client as a
	// remote error carrying this error's text. It classifies as
	// permanent: retrying the same payload would fail identically.
	ErrFrameTooLarge = errors.New("rpc: frame exceeds size limit")
)

// IsFrameTooLarge reports whether err is a sender-side oversized-frame
// rejection (the frame never touched the wire, so the connection remains
// usable).
func IsFrameTooLarge(err error) bool { return errors.Is(err, ErrFrameTooLarge) }

// transientErr marks an error as explicitly transient.
type transientErr struct{ err error }

func (e *transientErr) Error() string { return e.err.Error() }
func (e *transientErr) Unwrap() error { return e.err }

// MarkTransient wraps err so IsTransient reports true regardless of the
// default classification.
func MarkTransient(err error) error {
	if err == nil {
		return nil
	}
	return &transientErr{err: err}
}

// IsTransient reports whether err is worth retrying on a healthy provider.
// Transport-level failures and per-attempt timeouts are transient; remote
// handler errors, caller cancellation and locally closed connections are
// permanent.
func IsTransient(err error) bool {
	if err == nil {
		return false
	}
	var te *transientErr
	if errors.As(err, &te) {
		return true
	}
	switch {
	case errors.Is(err, context.Canceled):
		return false // the caller gave up; do not retry behind its back
	case errors.Is(err, ErrClosed):
		return false // this client closed the connection deliberately
	case errors.Is(err, ErrFrameTooLarge):
		return false // the same payload would exceed the limit again
	case IsRemote(err):
		return false // the handler ran; its verdict is authoritative
	case errors.Is(err, ErrUnavailable), errors.Is(err, ErrInjected):
		return true
	case errors.Is(err, context.DeadlineExceeded):
		return true // per-attempt deadline; the overall budget may remain
	default:
		return true // unclassified transport failure (dial, read, write)
	}
}
