package rpc

import (
	"context"
	"fmt"
	"sync"
)

// InprocNet is an in-process fabric: a registry of named endpoints whose
// connections invoke handlers directly. Bulk payloads — flat Bulk and
// vectored BulkVec alike — are passed by reference, modeling RDMA
// reads/writes of registered memory: no copies, no serialization, just the
// handler touching the client's buffer (and vice versa). The buffer-
// ownership contract in the package comment is what keeps that sharing
// safe. One InprocNet models one cluster fabric.
type InprocNet struct {
	mu      sync.RWMutex
	servers map[string]*Server
}

// NewInprocNet returns an empty fabric.
func NewInprocNet() *InprocNet {
	return &InprocNet{servers: make(map[string]*Server)}
}

// Listen binds srv to addr on the fabric.
func (n *InprocNet) Listen(addr string, srv *Server) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.servers[addr]; dup {
		return fmt.Errorf("rpc: inproc address %q already bound", addr)
	}
	n.servers[addr] = srv
	return nil
}

// Unlisten removes the binding for addr.
func (n *InprocNet) Unlisten(addr string) {
	n.mu.Lock()
	delete(n.servers, addr)
	n.mu.Unlock()
}

// Dial returns a connection to addr. The server must already be listening.
func (n *InprocNet) Dial(addr string) (Conn, error) {
	n.mu.RLock()
	srv := n.servers[addr]
	n.mu.RUnlock()
	if srv == nil {
		return nil, fmt.Errorf("rpc: inproc address %q not bound", addr)
	}
	return &inprocConn{net: n, addr: addr}, nil
}

// Addrs returns all bound addresses (sorted by map iteration — callers
// needing a stable order should sort).
func (n *InprocNet) Addrs() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.servers))
	for a := range n.servers {
		out = append(out, a)
	}
	return out
}

type inprocConn struct {
	net    *InprocNet
	addr   string
	closed sync.Once
	dead   bool
	mu     sync.RWMutex
}

// Call implements Conn. The server is resolved per call so a re-bound
// address is picked up, mirroring how a real fabric would reconnect.
func (c *inprocConn) Call(ctx context.Context, name string, req Message) (Message, error) {
	c.mu.RLock()
	dead := c.dead
	c.mu.RUnlock()
	if dead {
		return Message{}, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		return Message{}, err
	}
	c.net.mu.RLock()
	srv := c.net.servers[c.addr]
	c.net.mu.RUnlock()
	if srv == nil {
		return Message{}, fmt.Errorf("rpc: inproc address %q no longer bound", c.addr)
	}
	resp, err := srv.dispatch(ctx, name, req)
	if err != nil {
		// Handler failures cross the (virtual) wire as remote errors, so
		// callers see the same error class on every transport.
		return resp, &remoteError{msg: err.Error()}
	}
	return resp, nil
}

func (c *inprocConn) Addr() string { return c.addr }

func (c *inprocConn) Close() error {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	return nil
}

var _ Conn = (*inprocConn)(nil)
