package rpc

import (
	"bufio"
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCP wire format, little-endian:
//
//	request:  u16 nameLen | name | u32 metaLen | meta | u64 bulkLen | bulk
//	response: u8 status (0=ok, 1=error) |
//	          ok:    u32 metaLen | meta | u64 bulkLen | bulk
//	          error: u32 msgLen | msg
//
// The bulk payload is always framed as one total length followed by the
// bytes in order; a vectored payload (Message.BulkVec) is gathered into
// the stream with a single writev (net.Buffers) instead of being copied
// into one buffer first, so the frame a receiver sees is identical for
// flat and vectored senders.
//
// One connection carries one request at a time; TCPConn serializes with a
// mutex and DialPool fans parallel calls over several connections, which is
// how the client achieves the paper's "multiple bulk operations in parallel
// to the providers".

// MaxFrame is the sanity bound on any single length field of the wire
// format. Senders reject oversized frames with ErrFrameTooLarge before
// writing a byte; receivers drop the connection when a peer announces one.
const MaxFrame = 1 << 31

// vecFlushThreshold is the bulk size above which a vectored payload is
// written with writev directly to the socket instead of being copied
// through the connection's bufio.Writer. Below it, the copy into the
// already-allocated write buffer is cheaper than the extra syscall.
const vecFlushThreshold = 128 << 10

// ServeTCP accepts connections on lis and dispatches to srv until lis is
// closed. It returns after the listener fails (use lis.Close to stop).
func ServeTCP(lis net.Listener, srv *Server) error {
	for {
		conn, err := lis.Accept()
		if err != nil {
			return err
		}
		go serveConn(conn, srv)
	}
}

// ListenAndServeTCP binds addr and serves srv in a background goroutine,
// returning the listener for shutdown and the bound address (useful with
// ":0").
func ListenAndServeTCP(addr string, srv *Server) (net.Listener, string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	go ServeTCP(lis, srv) //nolint:errcheck // returns when lis closes
	return lis, lis.Addr().String(), nil
}

func serveConn(conn net.Conn, srv *Server) {
	defer conn.Close()
	r := bufio.NewReaderSize(conn, 256<<10)
	w := bufio.NewWriterSize(conn, 256<<10)
	var vec net.Buffers // per-connection writev scratch, reused across requests
	for {
		name, req, err := readRequest(r)
		if err != nil {
			return // client went away or sent garbage; drop the connection
		}
		resp, herr := srv.dispatch(context.Background(), name, req)
		err = writeResponse(w, conn, &vec, resp, herr)
		if err == nil {
			err = w.Flush()
		}
		// The response is on the wire (or the connection is dead): nothing
		// may alias the request frame anymore, so recycle its buffers.
		putBuf(req.Meta)
		putBuf(req.Bulk)
		if err != nil {
			return
		}
	}
}

// readRequest reads one request frame. Meta and bulk buffers are drawn
// from the receive pool; serveConn recycles them once the response has
// been written.
func readRequest(r *bufio.Reader) (string, Message, error) {
	var nl [2]byte
	if _, err := io.ReadFull(r, nl[:]); err != nil {
		return "", Message{}, err
	}
	nameLen := int(binary.LittleEndian.Uint16(nl[:]))
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return "", Message{}, err
	}
	meta, err := readSized32(r, true)
	if err != nil {
		return "", Message{}, err
	}
	bulk, err := readSized64(r, true)
	if err != nil {
		putBuf(meta)
		return "", Message{}, err
	}
	return string(name), Message{Meta: meta, Bulk: bulk}, nil
}

// writeBulk frames the bulk payload of m: the u64 total length, then the
// bytes. Large vectored payloads bypass the bufio.Writer with one writev.
func writeBulk(w *bufio.Writer, conn net.Conn, vec *net.Buffers, m *Message) error {
	total := m.BulkLen()
	var l8 [8]byte
	binary.LittleEndian.PutUint64(l8[:], uint64(total))
	if _, err := w.Write(l8[:]); err != nil {
		return err
	}
	slices := m.BulkSlices()
	if total <= vecFlushThreshold || conn == nil {
		for _, s := range slices {
			if _, err := w.Write(s); err != nil {
				return err
			}
		}
		return nil
	}
	// writev path: drain the buffered header, then gather the payload
	// slices straight from their owners' buffers — zero copies. The scratch
	// vector is reused so net.Buffers consumes our copy of the slice
	// headers, never the caller's BulkVec.
	if err := w.Flush(); err != nil {
		return err
	}
	*vec = append((*vec)[:0], slices...)
	_, err := vec.WriteTo(conn)
	*vec = (*vec)[:0]
	return err
}

// writeResponse frames one response. An oversized meta or bulk payload is
// reported to the client as a remote error carrying the ErrFrameTooLarge
// text instead of a torn frame, so the connection stays usable.
func writeResponse(w *bufio.Writer, conn net.Conn, vec *net.Buffers, resp Message, herr error) error {
	if herr == nil {
		if len(resp.Meta) > MaxFrame || resp.BulkLen() > MaxFrame {
			herr = fmt.Errorf("%w: response meta %d bulk %d bytes", ErrFrameTooLarge, len(resp.Meta), resp.BulkLen())
		}
	}
	if herr != nil {
		msg := herr.Error()
		if err := w.WriteByte(1); err != nil {
			return err
		}
		var l [4]byte
		binary.LittleEndian.PutUint32(l[:], uint32(len(msg)))
		w.Write(l[:])
		_, err := w.WriteString(msg)
		return err
	}
	if err := w.WriteByte(0); err != nil {
		return err
	}
	var l4 [4]byte
	binary.LittleEndian.PutUint32(l4[:], uint32(len(resp.Meta)))
	w.Write(l4[:])
	w.Write(resp.Meta)
	return writeBulk(w, conn, vec, &resp)
}

// readSized32 / readSized64 read one length-prefixed field. With pooled
// set, the buffer comes from the receive pool (server side, recycled after
// the response is written); without it, the buffer is freshly allocated
// and owned by the caller (client side, where responses may be retained
// indefinitely).
func readSized32(r io.Reader, pooled bool) ([]byte, error) {
	var l [4]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(l[:])
	if n > MaxFrame {
		// Untyped on purpose: peers guard their own sends, so an announced
		// oversize means stream corruption — a transport failure, not a
		// payload-too-large verdict the caller could act on.
		return nil, fmt.Errorf("rpc: announced frame of %d bytes exceeds limit", n)
	}
	return readBody(r, int(n), pooled)
}

func readSized64(r io.Reader, pooled bool) ([]byte, error) {
	var l [8]byte
	if _, err := io.ReadFull(r, l[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(l[:])
	if n > MaxFrame {
		return nil, fmt.Errorf("rpc: announced frame of %d bytes exceeds limit", n)
	}
	return readBody(r, int(n), pooled)
}

func readBody(r io.Reader, n int, pooled bool) ([]byte, error) {
	if n == 0 {
		return nil, nil
	}
	var buf []byte
	if pooled {
		buf = getBuf(n)
	} else {
		buf = make([]byte, n)
	}
	if _, err := io.ReadFull(r, buf); err != nil {
		if pooled {
			putBuf(buf)
		}
		return nil, err
	}
	return buf, nil
}

// tcpConn is one physical connection; calls are serialized.
type tcpConn struct {
	addr string
	mu   sync.Mutex
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
	vec  net.Buffers // writev scratch, reused across calls
	dead bool
}

// DialTCP opens a single connection to addr.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpConn{
		addr: addr,
		conn: c,
		r:    bufio.NewReaderSize(c, 256<<10),
		w:    bufio.NewWriterSize(c, 256<<10),
	}, nil
}

// Call implements Conn.
func (c *tcpConn) Call(ctx context.Context, name string, req Message) (Message, error) {
	if err := ctx.Err(); err != nil {
		return Message{}, err
	}
	if len(name) > 0xffff {
		return Message{}, fmt.Errorf("rpc: handler name too long")
	}
	// Reject oversized frames before writing a byte: the connection stays
	// usable and the caller gets a permanent, typed error instead of a
	// silently truncated length field.
	if len(req.Meta) > MaxFrame || req.BulkLen() > MaxFrame {
		return Message{}, fmt.Errorf("%w: request meta %d bulk %d bytes", ErrFrameTooLarge, len(req.Meta), req.BulkLen())
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return Message{}, ErrClosed
	}
	// A SetDeadline failure means the socket is already unusable; fail the
	// call now instead of hanging in the frame read below.
	deadline, ok := ctx.Deadline()
	if !ok {
		deadline = noDeadline
	}
	if err := c.conn.SetDeadline(deadline); err != nil {
		c.dead = true
		return Message{}, fmt.Errorf("rpc: setting deadline on %s: %w", c.addr, err)
	}
	var nl [2]byte
	binary.LittleEndian.PutUint16(nl[:], uint16(len(name)))
	c.w.Write(nl[:])
	c.w.WriteString(name)
	var l4 [4]byte
	binary.LittleEndian.PutUint32(l4[:], uint32(len(req.Meta)))
	c.w.Write(l4[:])
	c.w.Write(req.Meta)
	if err := writeBulk(c.w, c.conn, &c.vec, &req); err != nil {
		c.dead = true
		return Message{}, err
	}
	if err := c.w.Flush(); err != nil {
		c.dead = true
		return Message{}, err
	}

	status, err := c.r.ReadByte()
	if err != nil {
		c.dead = true
		return Message{}, err
	}
	switch status {
	case 0:
		meta, err := readSized32(c.r, false)
		if err != nil {
			c.dead = true
			return Message{}, err
		}
		// With a frame sink on the context the caller has opted into
		// leased receive frames: the bulk payload lands in a pooled
		// buffer whose recycle point is the lease's final release,
		// instead of a one-shot allocation the GC has to chew through.
		sink := frameSinkFrom(ctx)
		bulk, err := readSized64(c.r, sink != nil)
		if err != nil {
			c.dead = true
			return Message{}, err
		}
		if sink != nil && len(bulk) > 0 {
			sink.set(NewFrame(bulk))
		}
		return Message{Meta: meta, Bulk: bulk}, nil
	case 1:
		msg, err := readSized32(c.r, false)
		if err != nil {
			c.dead = true
			return Message{}, err
		}
		return Message{}, &remoteError{msg: string(msg)}
	default:
		c.dead = true
		return Message{}, fmt.Errorf("rpc: bad status byte %d", status)
	}
}

// noDeadline clears a previously set deadline.
var noDeadline time.Time

func (c *tcpConn) Addr() string { return c.addr }

func (c *tcpConn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.dead {
		return nil
	}
	c.dead = true
	return c.conn.Close()
}

// Pool multiplexes concurrent calls over up to size physical connections to
// one address, created lazily. It lets a client keep several bulk
// operations to the same provider in flight — the transport-level
// parallelism the client's striped reads fan out over.
type Pool struct {
	addr string
	dial func(addr string) (Conn, error)

	mu    sync.Mutex
	idle  []Conn
	total int
	size  int
	dead  bool
	avail chan struct{}
}

// NewPool builds a pool of up to size connections using dial.
func NewPool(addr string, size int, dial func(addr string) (Conn, error)) *Pool {
	if size < 1 {
		size = 1
	}
	p := &Pool{addr: addr, dial: dial, size: size, avail: make(chan struct{}, size)}
	for i := 0; i < size; i++ {
		p.avail <- struct{}{}
	}
	return p
}

// Call implements Conn: it borrows a connection (dialing if below the cap)
// and returns it after the call.
func (p *Pool) Call(ctx context.Context, name string, req Message) (Message, error) {
	select {
	case <-p.avail:
	case <-ctx.Done():
		return Message{}, ctx.Err()
	}
	defer func() { p.avail <- struct{}{} }()

	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		return Message{}, ErrClosed
	}
	var c Conn
	if n := len(p.idle); n > 0 {
		c = p.idle[n-1]
		p.idle = p.idle[:n-1]
	}
	p.mu.Unlock()

	if c == nil {
		var err error
		c, err = p.dial(p.addr)
		if err != nil {
			return Message{}, err
		}
		p.mu.Lock()
		p.total++
		p.mu.Unlock()
	}
	resp, err := c.Call(ctx, name, req)
	if err != nil && !IsRemote(err) && !IsFrameTooLarge(err) {
		// Transport failure: discard the connection. (An oversized frame is
		// rejected before any byte hits the wire, so it leaves the
		// connection healthy.)
		c.Close()
		p.mu.Lock()
		p.total--
		p.mu.Unlock()
		return resp, err
	}
	p.mu.Lock()
	if p.dead {
		p.mu.Unlock()
		c.Close()
		return resp, err
	}
	p.idle = append(p.idle, c)
	p.mu.Unlock()
	return resp, err
}

// Addr implements Conn.
func (p *Pool) Addr() string { return p.addr }

// Close implements Conn, closing all idle connections.
func (p *Pool) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.dead = true
	for _, c := range p.idle {
		c.Close()
	}
	p.idle = nil
	return nil
}

var _ Conn = (*Pool)(nil)
