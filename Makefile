GO ?= go

.PHONY: build test check bench-faults

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full verification: static analysis plus the test suite under the race
# detector. This is what CI should run.
check:
	$(GO) vet ./...
	$(GO) test -race ./...

# End-to-end resilience proof: store/load/partition/retire through a
# fault-injecting fabric; fails on any refcount drift.
bench-faults:
	$(GO) run ./cmd/evostore-bench faults
