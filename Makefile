GO ?= go

.PHONY: build test check bench bench-faults bench-repair bench-rebalance bench-restart bench-dedup bench-frontdoor bench-autobalance bench-storm docs-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Full verification: static analysis plus the test suite under the race
# detector, a 1-iteration smoke run of the tracked bulk benchmarks so the
# suite can't rot, the replica-repair convergence scenario (kill a
# replica mid-workload, heal, assert digests converge with zero lost
# refcount deltas), the elasticity scenario (drain a provider and join a
# spare mid-workload with zero failed requests), the crash-recovery
# scenario (kill -9 a provider, reopen its directory, assert the durable
# catalog replays and repair only moves the divergence tail), a
# scaled-down dedup lineage run (verifies every restored model
# bit-identical), the gray-failure storm scenario (rolling slow nodes, a
# flapping partition, and a kill/restart under zipfian load: zero failed
# reads, hedged p99 bounded), and the docs-vs-code identifier check. This
# is what CI should run.
check:
	$(GO) vet ./...
	$(GO) test -race ./...
	$(GO) test -run '^$$' -bench Bulk -benchtime 1x ./internal/bulkbench
	$(GO) run ./cmd/evostore-bench faults -repair -models 10
	$(GO) run ./cmd/evostore-bench faults -rebalance -models 10
	$(GO) run ./cmd/evostore-bench faults -restart -models 10
	$(GO) run ./cmd/evostore-bench faults -autobalance -models 16 -reads 600
	$(GO) run ./cmd/evostore-bench dedup -steps 4 -layers 8 -dim 128
	$(GO) run ./cmd/evostore-bench frontdoor -smoke
	$(GO) run ./cmd/evostore-bench storm -smoke
	./scripts/docscheck.sh

# Fail if a `pkg.Identifier` code span in docs/ARCHITECTURE.md or
# README.md names an exported identifier that no longer exists.
docs-check:
	./scripts/docscheck.sh

# End-to-end repair proof on its own: partial writes during an outage,
# anti-entropy convergence after healing.
bench-repair:
	$(GO) run ./cmd/evostore-bench faults -repair

# Refresh the tracked bulk data path benchmarks (BENCH_bulk.json). The
# "before" baseline entries are preserved; "after" entries are replaced.
bench:
	$(GO) run ./cmd/evostore-bench bulk -out BENCH_bulk.json -benchtime 2s

# Crash-recovery proof on its own: kill -9 one provider mid-workload,
# reopen its data directory, validate the manifest, replay the durable
# catalog, and assert one repair pass moves only the outage-era bytes.
bench-restart:
	$(GO) run ./cmd/evostore-bench faults -restart

# End-to-end resilience proof: store/load/partition/retire through a
# fault-injecting fabric; fails on any refcount drift.
bench-faults:
	$(GO) run ./cmd/evostore-bench faults

# Elasticity proof + tracked migration throughput (BENCH_rebalance.json):
# drain one provider and join a spare under live load, recording models/s
# and MB/s moved per epoch change.
bench-rebalance:
	$(GO) run ./cmd/evostore-bench faults -rebalance -models 64 -out BENCH_rebalance.json

# Tracked front-door numbers (BENCH_frontdoor.json): zipfian fan-in
# reduction from coalescing + the client segment cache, throttled-tenant
# isolation (noisy tenant held at its bucket rate, quiet tenant p99 flat),
# and read-path allocations with pooled receive frames vs BENCH_bulk.json.
bench-frontdoor:
	$(GO) run ./cmd/evostore-bench frontdoor -out BENCH_frontdoor.json -benchtime 2s

# Heat-driven autobalance proof + tracked numbers (BENCH_autobalance.json):
# a zipfian workload skews per-model heat, the controller widens hot models
# and packs cold ones under live load with zero failed reads, p99 within
# 20% of the no-migration baseline, and migration bytes within budget.
bench-autobalance:
	$(GO) run ./cmd/evostore-bench faults -autobalance -out BENCH_autobalance.json

# Gray-failure storm proof + tracked tail numbers (BENCH_storm.json):
# rolling 20x slow-node episodes, a flapping partition, and one provider
# kill/restart under zipfian load, run unhedged then hedged. Contract:
# zero failed reads in every phase, hedged storm p99 within 2x the hedged
# healthy baseline, hedge volume within the token budget.
bench-storm:
	$(GO) run ./cmd/evostore-bench storm -out BENCH_storm.json

# Tracked dedup numbers (BENCH_dedup.json): the 10-step fine-tune lineage
# stored raw vs delta-encoded + content-addressed, with bit-identical
# restore verification. Targets: >= 3x bytes reduction, <= 2x restore
# slowdown.
bench-dedup:
	$(GO) run ./cmd/evostore-bench dedup -out BENCH_dedup.json
