// Continual learning: the paper's §6 future-work scenario on the public
// API — a model family that tracks a drifting data distribution through
// periodic fine-tuning, where the right transfer source is the most
// *recent* compatible model, not the highest-scoring one.
//
//	go run ./examples/continual
//
// Each "day", the deployed model is fine-tuned on fresh data (its head
// retrains; the backbone stays frozen) and stored. Ancestor selection uses
// BestAncestorRecent, which breaks LCP ties by recency; models older than
// the retention window are retired, and incremental storage keeps the
// whole retained history at a fraction of full copies.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/model"
)

const (
	days      = 14
	retention = 5 // keep the last 5 daily snapshots
)

func main() {
	ctx := context.Background()
	repo, err := core.Open(core.Options{Providers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()

	f, err := model.Flatten(model.Sequential("deployed", 64,
		model.Dense{In: 64, Out: 128, Activation: "relu", UseBias: true},
		model.Dense{In: 128, Out: 128, Activation: "relu", UseBias: true},
		model.Dense{In: 128, Out: 128, Activation: "relu", UseBias: true},
		model.Dense{In: 128, Out: 16, Activation: "softmax", UseBias: true},
	))
	if err != nil {
		log.Fatal(err)
	}
	head := graph.VertexID(f.Graph.NumVertices() - 1)

	// Day 0: initial training from scratch.
	ws := model.Materialize(f, 0)
	first, err := repo.Store(ctx, f, ws, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	window := []core.ModelID{first}
	fmt.Printf("day  0: trained from scratch → model %d\n", first)

	for day := 1; day <= days; day++ {
		// The freshest compatible snapshot is the fine-tuning source —
		// recency beats quality when the data distribution drifts.
		anc, found, err := repo.BestAncestorRecent(ctx, f)
		if err != nil || !found {
			log.Fatalf("day %d: no ancestor (%v)", day, err)
		}
		cur := model.Materialize(f, uint64(day))
		if err := repo.TransferPrefix(ctx, f, cur, anc); err != nil {
			log.Fatal(err)
		}
		cur.PerturbVertex(head, uint64(day))   // fine-tune on today's data
		quality := 0.85 + 0.005*float64(day%3) // day-to-day metric wiggle
		id, err := repo.StoreDerived(ctx, f, cur, quality, anc, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %2d: fine-tuned from model %d (recency-selected) → model %d\n",
			day, anc.Meta.Model, id)
		window = append(window, id)

		// Retention: retire snapshots that aged out of the window.
		for len(window) > retention {
			old := window[0]
			window = window[1:]
			freed, err := repo.Retire(ctx, old)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("        retired model %d (freed %d unshared segments)\n", old, freed)
		}
	}

	// The retained window shares its backbone: storage stays near one
	// model's worth plus per-day heads.
	st, err := repo.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	full := f.TotalParamBytes() * int64(retention)
	fmt.Printf("\nretained %d snapshots in %s (full copies would need %s — %.1fx saving)\n",
		retention, metrics.HumanBytes(int64(st.SegmentBytes)),
		metrics.HumanBytes(full), float64(full)/float64(st.SegmentBytes))

	// Provenance across the window: every retained snapshot chains back to
	// the day-0 backbone owner.
	newest := window[len(window)-1]
	lineage, err := repo.Lineage(ctx, newest)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("newest snapshot's contributing chain: %v\n", lineage)
}
