// Provenance: ancestry queries over a transfer-learning family tree,
// answered entirely from owner maps (paper §4.1, "Owner Maps as a
// Foundation for Provenance").
//
//	go run ./examples/provenance
//
// Builds the family
//
//	grandparent ── parent ── childA
//	                  └───── childB
//
// then asks: what is each model's lineage? which ancestor owns a given
// frozen layer? what is the most recent common ancestor of the siblings?
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/model"
)

func buildModel(last int) (*model.Flat, error) {
	return model.Flatten(model.Sequential("m", 16,
		model.Dense{In: 16, Out: 16, Activation: "relu"},
		model.Dense{In: 16, Out: 16, Activation: "relu"},
		model.Dense{In: 16, Out: 16, Activation: "relu"},
		model.Dense{In: 16, Out: 16, Activation: "relu"},
		model.Dense{In: 16, Out: last, Activation: "softmax"},
	))
}

// derive performs one transfer-learning step: query, inherit, train the
// last trainLast layers, store.
func derive(ctx context.Context, repo *core.Repository, f *model.Flat, seed uint64, q float64, trainLast int) (core.ModelID, error) {
	anc, found, err := repo.BestAncestor(ctx, f)
	if err != nil {
		return 0, err
	}
	if !found {
		return 0, fmt.Errorf("no ancestor")
	}
	ws := model.Materialize(f, seed)
	if err := repo.TransferPrefix(ctx, f, ws, anc); err != nil {
		return 0, err
	}
	n := f.Graph.NumVertices()
	for v := n - trainLast; v < n; v++ {
		ws.PerturbVertex(graph.VertexID(v), seed)
	}
	return repo.StoreDerived(ctx, f, ws, q, anc, nil)
}

func main() {
	ctx := context.Background()
	repo, err := core.Open(core.Options{Providers: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()

	f, err := buildModel(4)
	if err != nil {
		log.Fatal(err)
	}

	gp, err := repo.Store(ctx, f, model.Materialize(f, 1), 0.70)
	if err != nil {
		log.Fatal(err)
	}
	parent, err := derive(ctx, repo, f, 2, 0.80, 3) // retrains last 3 layers
	if err != nil {
		log.Fatal(err)
	}
	childA, err := derive(ctx, repo, f, 3, 0.85, 1) // retrains the head
	if err != nil {
		log.Fatal(err)
	}
	childB, err := derive(ctx, repo, f, 4, 0.83, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("family: grandparent=%d parent=%d childA=%d childB=%d\n\n", gp, parent, childA, childB)

	// Lineage: the chain of ancestors that contributed tensors, from one
	// metadata fetch (no chain walking).
	for _, id := range []core.ModelID{parent, childA} {
		lineage, err := repo.Lineage(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("lineage of %d: %v\n", id, lineage)
	}

	// Which ancestor "owns" each layer of childA?
	meta, err := repo.GetMeta(ctx, childA)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nchildA layer ownership:")
	for v := 0; v < meta.Graph.NumVertices(); v++ {
		owner, err := repo.OwnerOf(ctx, childA, graph.VertexID(v))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  layer %d (%s): owned by %d\n", v, meta.Graph.Vertices[v].Name, owner)
	}

	// Most recent common ancestor of the two siblings.
	mrca, ok, err := repo.CommonAncestor(ctx, childA, childB)
	if err != nil {
		log.Fatal(err)
	}
	if ok {
		fmt.Printf("\nmost recent common ancestor of %d and %d: %d\n", childA, childB, mrca)
	}

	// Global ordering: owners carry repository-wide sequence numbers, so
	// the exact order of the transfer operations is recoverable.
	fmt.Println("\ntransfer operations in global order (childA's owner map):")
	for _, g := range meta.OwnerMap.Owners() {
		fmt.Printf("  seq %d: model %d wrote %d layer(s)\n", g.Seq, g.Owner, len(g.Vertices))
	}
}
