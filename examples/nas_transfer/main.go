// NAS with transfer learning: a miniature version of the paper's
// motivating scenario (§2) on the public API.
//
//	go run ./examples/nas_transfer
//
// An aged-evolution controller explores a cell-based search space; worker
// goroutines evaluate candidates by querying EvoStore for the best
// transfer ancestor, inheriting and freezing the common prefix, training
// (surrogate), and writing back only the modified tensors. Retired
// population members are garbage-collected from the repository.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/nas"
)

func main() {
	ctx := context.Background()
	repo, err := core.Open(core.Options{Providers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()

	cfg := nas.RealConfig{
		Workers:       8,
		Space:         nas.NewSpace(14, 8, 16),
		Population:    40,
		Sample:        8,
		Budget:        300,
		Retire:        true,
		SurrogateSeed: 11,
		SearchSeed:    12,
	}
	fmt.Printf("search space: %.3g candidate architectures\n", cfg.Space.Size())
	fmt.Printf("evaluating %d candidates on %d workers...\n", cfg.Budget, cfg.Workers)

	res, err := nas.RunReal(ctx, repo, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nsearch finished in %v\n", res.Makespan)
	fmt.Printf("best candidate: %s  accuracy=%.4f  lineage experience=%.2f epochs\n",
		res.Best.Seq, res.Best.Quality, res.Best.Experience)

	// How much did transfer learning contribute over the run?
	transferred := 0
	var expSum float64
	for _, c := range res.History {
		if c.Experience > 1 {
			transferred++
		}
		expSum += c.Experience
	}
	fmt.Printf("%d/%d candidates inherited weights; mean lineage experience %.2f epochs\n",
		transferred, len(res.History), expSum/float64(len(res.History)))

	// The best model's provenance, straight from its owner map.
	best := core.ModelID(res.Best.ID)
	if lineage, err := repo.Lineage(ctx, best); err == nil {
		fmt.Printf("best model's contributing-ancestor chain: %v\n", lineage)
	}

	st, err := repo.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repository after search: %d live models (population cap %d), %s stored\n",
		st.Models, cfg.Population, metrics.HumanBytes(int64(st.SegmentBytes)))
}
