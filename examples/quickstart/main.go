// Quickstart: the full EvoStore round trip in one file.
//
//	go run ./examples/quickstart
//
// It opens an embedded repository, stores a model, derives a second model
// through transfer learning (collective LCP query → partial read → train →
// incremental write), inspects sharing, and retires the ancestor to show
// reference-counted garbage collection keeping shared tensors alive.
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/metrics"
	"repro/internal/model"
)

func main() {
	ctx := context.Background()
	repo, err := core.Open(core.Options{Providers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()

	// 1. Build a model with the Keras-like API and store it.
	mlp := model.Sequential("base", 32,
		model.Dense{In: 32, Out: 64, Activation: "relu", UseBias: true},
		model.BatchNorm{Dim: 64},
		model.Dense{In: 64, Out: 64, Activation: "relu", UseBias: true},
		model.Dense{In: 64, Out: 10, Activation: "softmax", UseBias: true},
	)
	base, err := model.Flatten(mlp)
	if err != nil {
		log.Fatal(err)
	}
	baseWeights := model.Materialize(base, 42) // stands in for trained weights
	baseID, err := repo.Store(ctx, base, baseWeights, 0.91)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored base model %d: %d leaf layers, %s of parameters\n",
		baseID, base.NumLeaves(), metrics.HumanBytes(base.TotalParamBytes()))

	// 2. A new candidate with a different head: find the best transfer
	//    ancestor with a collective LCP query.
	mlp2 := model.Sequential("derived", 32,
		model.Dense{In: 32, Out: 64, Activation: "relu", UseBias: true},
		model.BatchNorm{Dim: 64},
		model.Dense{In: 64, Out: 64, Activation: "relu", UseBias: true},
		model.Dense{In: 64, Out: 3, Activation: "softmax", UseBias: true}, // new head
	)
	derived, err := model.Flatten(mlp2)
	if err != nil {
		log.Fatal(err)
	}
	anc, found, err := repo.BestAncestor(ctx, derived)
	if err != nil {
		log.Fatal(err)
	}
	if !found {
		log.Fatal("no ancestor found")
	}
	fmt.Printf("best ancestor: model %d, common prefix %d/%d layers (%s)\n",
		anc.Meta.Model, len(anc.Prefix), derived.NumLeaves(),
		metrics.HumanBytes(anc.PrefixBytes(derived)))

	// 3. Transfer the prefix (partial read), "train" the rest, store the
	//    diff. Only the modified head travels back to the repository.
	weights := model.Materialize(derived, 43)
	if err := repo.TransferPrefix(ctx, derived, weights, anc); err != nil {
		log.Fatal(err)
	}
	head := graph.VertexID(derived.Graph.NumVertices() - 1)
	weights.PerturbVertex(head, 99) // one epoch of "fine-tuning"
	derivedID, err := repo.StoreDerived(ctx, derived, weights, 0.94, anc, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored derived model %d (only the modified head was written)\n", derivedID)

	// 4. Inspect sharing through the owner map.
	meta, err := repo.GetMeta(ctx, derivedID)
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range meta.OwnerMap.Owners() {
		fmt.Printf("  owner %d contributes %d layers\n", g.Owner, len(g.Vertices))
	}

	// 5. Retire the base model: its metadata goes immediately, but the
	//    tensors the derived model inherited stay alive.
	freed, err := repo.Retire(ctx, baseID)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("retired base model: %d unshared segments freed\n", freed)
	if _, loaded, err := repo.Load(ctx, derivedID); err != nil {
		log.Fatal(err)
	} else if !loaded.Equal(weights) {
		log.Fatal("derived model corrupted by retirement")
	}
	fmt.Println("derived model still loads byte-identically — shared tensors survived")

	st, err := repo.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repository: %d model(s), %d segments, %s\n",
		st.Models, st.Segments, metrics.HumanBytes(int64(st.SegmentBytes)))
}
