// Dedup: storage-space accounting for incremental tensor storage,
// replaying the paper's Figure 2 arithmetic (13 unique layers stored
// instead of 21) and contrasting with the whole-file HDF5 baseline.
//
//	go run ./examples/dedup
package main

import (
	"context"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hdf5"
	"repro/internal/metrics"
	"repro/internal/model"
)

func main() {
	ctx := context.Background()
	repo, err := core.Open(core.Options{Providers: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer repo.Close()

	// A 7-dense-layer model (8 leaf vertices with the input).
	f, err := model.Flatten(model.Sequential("m", 64,
		model.Dense{In: 64, Out: 64, Activation: "relu"},
		model.Dense{In: 64, Out: 64, Activation: "relu"},
		model.Dense{In: 64, Out: 64, Activation: "relu"},
		model.Dense{In: 64, Out: 64, Activation: "relu"},
		model.Dense{In: 64, Out: 64, Activation: "relu"},
		model.Dense{In: 64, Out: 64, Activation: "relu"},
		model.Dense{In: 64, Out: 10, Activation: "softmax"},
	))
	if err != nil {
		log.Fatal(err)
	}

	// Grandparent: stored in full.
	gpWS := model.Materialize(f, 1)
	gpID, err := repo.Store(ctx, f, gpWS, 0.7)
	if err != nil {
		log.Fatal(err)
	}

	// Parent: trains the last 4 layers (inherits {input,1,2,3}).
	parentID := deriveTrainingLast(ctx, repo, f, 2, 0.75, 4)
	// Child: trains the last 2 layers (inherits through the parent).
	childID := deriveTrainingLast(ctx, repo, f, 3, 0.80, 2)

	fmt.Printf("grandparent=%d parent=%d child=%d\n\n", gpID, parentID, childID)

	// EvoStore accounting.
	st, err := repo.Stats(ctx)
	if err != nil {
		log.Fatal(err)
	}
	perModelSegments := f.Graph.NumVertices()
	fmt.Printf("EvoStore stores %d unique segments for 3 models (%d if copied fully)\n",
		st.Segments, 3*perModelSegments)
	fmt.Printf("EvoStore payload: %s\n", metrics.HumanBytes(int64(st.SegmentBytes)))

	// HDF5 baseline: three self-contained files.
	var h5Bytes int64
	for seed := uint64(1); seed <= 3; seed++ {
		h5Bytes += int64(len(hdf5.Encode(hdf5.SaveModel("m", f, model.Materialize(f, seed)))))
	}
	fmt.Printf("HDF5 baseline payload (3 full files): %s\n", metrics.HumanBytes(h5Bytes))
	fmt.Printf("space saving: %.2fx\n\n", float64(h5Bytes)/float64(st.SegmentBytes))

	// GC behaviour: retire everything and verify the repository drains.
	for _, id := range []core.ModelID{gpID, parentID, childID} {
		freed, err := repo.Retire(ctx, id)
		if err != nil {
			log.Fatal(err)
		}
		st, _ := repo.Stats(ctx)
		fmt.Printf("retired %d: freed %d segments now, %d segments (%s) remain\n",
			id, freed, st.Segments, metrics.HumanBytes(int64(st.SegmentBytes)))
	}
}

func deriveTrainingLast(ctx context.Context, repo *core.Repository, f *model.Flat, seed uint64, q float64, trainLast int) core.ModelID {
	anc, found, err := repo.BestAncestor(ctx, f)
	if err != nil || !found {
		log.Fatalf("ancestor query: %v (found=%v)", err, found)
	}
	ws := model.Materialize(f, seed)
	if err := repo.TransferPrefix(ctx, f, ws, anc); err != nil {
		log.Fatal(err)
	}
	n := f.Graph.NumVertices()
	for v := n - trainLast; v < n; v++ {
		ws.PerturbVertex(graph.VertexID(v), seed)
	}
	id, err := repo.StoreDerived(ctx, f, ws, q, anc, nil)
	if err != nil {
		log.Fatal(err)
	}
	return id
}
