#!/bin/sh
# docscheck verifies that documentation stays anchored to the code: every
# `pkg.Identifier` code span in the checked documents — a lowercase
# internal package name, a dot, an exported identifier — must name an
# identifier that still occurs in that package's non-test Go sources.
# Renaming or deleting an exported identifier without updating the docs
# fails `make docs-check` (and therefore `make check`).
#
# Purely grep-based by design: no build step, no Go toolchain assumptions
# beyond the source tree layout, and spans that do not look like a package
# reference (shell snippets, JSON fields, RPC names) are ignored.
set -eu
cd "$(dirname "$0")/.."

DOCS="docs/ARCHITECTURE.md README.md"
fail=0

for doc in $DOCS; do
    [ -f "$doc" ] || { echo "docscheck: $doc missing" >&2; exit 1; }
    # `pkg.Ident`, `pkg.Ident.Field`, `pkg.Ident{...}` etc. — capture the
    # package and the first exported identifier after the dot.
    spans=$(grep -o '`[a-z][a-z0-9]*\.[A-Z][A-Za-z0-9_]*' "$doc" | tr -d '`' | sort -u)
    for span in $spans; do
        pkg=${span%%.*}
        ident=$(printf '%s' "${span#*.}" | sed 's/\..*//')
        dir="internal/$pkg"
        # Not an internal package reference (e.g. `rand.Intn`): skip.
        [ -d "$dir" ] || continue
        if ! grep -qw "$ident" "$dir"/*.go 2>/dev/null; then
            echo "docscheck: $doc references \`$span\` but $dir has no identifier $ident" >&2
            fail=1
        fi
    done
done

if [ "$fail" -ne 0 ]; then
    echo "docscheck: FAILED — update the docs or restore the identifiers" >&2
    exit 1
fi
echo "docscheck: ok"
