// Package repro's root benchmarks regenerate every figure of the paper's
// evaluation (one benchmark per table/figure, per DESIGN.md) plus the
// ablation studies. Each bench runs a scaled-down configuration per
// iteration and reports the figure's headline quantities as custom
// metrics; run cmd/evostore-bench for full-scale tables.
//
//	go test -bench=. -benchmem
package repro

import (
	"testing"

	"repro/internal/expr"
	"repro/internal/nas"
)

func benchNAS() expr.NASConfig {
	return expr.NASConfig{
		Budget:     200,
		Population: 40,
		Sample:     8,
		Space:      nas.NewSpace(12, 8, 0),
		Seed:       1,
		Retire:     true,
	}
}

// BenchmarkFig4IncrementalStorage reproduces Figure 4: aggregate write
// bandwidth of incremental EvoStore writes vs whole-file HDF5+PFS writes,
// weak-scaled, at paper scale on the virtual fabric.
func BenchmarkFig4IncrementalStorage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expr.RunFig4(expr.Fig4Config{Virtual: true, GPUs: []int{8, 64, 256}})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.GPUs == 256 {
				switch {
				case r.Approach == "EvoStore" && r.Fraction == 0.25:
					b.ReportMetric(r.AggGBps, "evostore25%-GB/s")
				case r.Approach == "EvoStore" && r.Fraction == 1.0:
					b.ReportMetric(r.AggGBps, "evostore100%-GB/s")
				case r.Approach == "HDF5+PFS":
					b.ReportMetric(r.AggGBps, "hdf5pfs-GB/s")
				}
			}
		}
	}
}

// BenchmarkFig4RealWrites is the wall-clock companion: actual concurrent
// derived-model writes against an in-process deployment.
func BenchmarkFig4RealWrites(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expr.RunFig4(expr.Fig4Config{
			GPUs: []int{8}, Fractions: []float64{0.25, 1.0},
			ModelBytes: 8 << 20, Layers: 50,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Approach == "EvoStore" && r.Fraction == 0.25 {
				b.ReportMetric(r.AggGBps, "evostore25%-GB/s")
			}
			if r.Approach == "HDF5+PFS" {
				b.ReportMetric(r.AggGBps, "hdf5pfs-GB/s")
			}
		}
	}
}

// BenchmarkFig5QueryScalability reproduces Figure 5: strong scaling of LCP
// query processing, EvoStore collective queries vs Redis-Queries.
func BenchmarkFig5QueryScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expr.RunFig5(expr.Fig5Config{
			CatalogSize: 500, Queries: 100, Workers: []int{1, 32}, Providers: 8,
		})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Workers == 32 {
				switch r.Approach {
				case "EvoStore":
					b.ReportMetric(r.QueriesPerS, "evostore-q/s")
				case "Redis-Queries":
					b.ReportMetric(r.QueriesPerS, "redis-q/s")
				}
			}
		}
	}
}

// BenchmarkFig6AccuracyOverTime reproduces Figure 6: candidate accuracy
// over search time with and without transfer learning.
func BenchmarkFig6AccuracyOverTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, summaries, err := expr.RunFig6(benchNAS(), 64)
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range summaries {
			switch s.Approach {
			case "EvoStore":
				b.ReportMetric(s.BestAcc, "evostore-best-acc")
			case "DH-NoTransfer":
				b.ReportMetric(s.BestAcc, "notransfer-best-acc")
			}
		}
	}
}

// BenchmarkFig7TimeToTarget reproduces Figure 7: virtual seconds until a
// candidate reaches the target accuracy band.
func BenchmarkFig7TimeToTarget(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expr.RunFig7(benchNAS(), []float64{0.80}, []int{64})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if !r.Reached {
				continue
			}
			switch r.Approach {
			case "EvoStore":
				b.ReportMetric(r.Seconds, "evostore-to-0.80-s")
			case "DH-NoTransfer":
				b.ReportMetric(r.Seconds, "notransfer-to-0.80-s")
			}
		}
	}
}

// BenchmarkFig8EndToEnd reproduces Figure 8: end-to-end NAS runtime for
// the three approaches.
func BenchmarkFig8EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expr.RunFig8(benchNAS(), []int{64})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Approach {
			case "EvoStore":
				b.ReportMetric(r.Makespan, "evostore-s")
				b.ReportMetric(r.RepoOverhead*100, "evostore-overhead-%")
			case "DH-NoTransfer":
				b.ReportMetric(r.Makespan, "notransfer-s")
			case "HDF5+PFS":
				b.ReportMetric(r.Makespan, "hdf5pfs-s")
			}
		}
	}
}

// BenchmarkFig9TaskTimeline reproduces Figure 9: per-task duration
// statistics and wave behaviour across the three approaches.
func BenchmarkFig9TaskTimeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expr.RunFig9(benchNAS(), 64, nil)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			switch r.Approach {
			case "EvoStore":
				b.ReportMetric(r.StdTaskSec, "evostore-task-stddev-s")
			case "HDF5+PFS":
				b.ReportMetric(r.StdTaskSec, "hdf5pfs-task-stddev-s")
			case "DH-NoTransfer":
				b.ReportMetric(r.WaveScore, "notransfer-wavescore")
			}
		}
	}
}

// BenchmarkFig10StorageSpace reproduces Figure 10: repository storage
// space with and without retirement.
func BenchmarkFig10StorageSpace(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expr.RunFig10(benchNAS(), 64)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			mb := float64(r.FinalBytes) / (1 << 20)
			switch {
			case r.Approach == "EvoStore" && r.Retire:
				b.ReportMetric(mb, "evostore-retire-MiB")
			case r.Approach == "EvoStore":
				b.ReportMetric(mb, "evostore-MiB")
			case r.Approach == "HDF5+PFS" && r.Retire:
				b.ReportMetric(mb, "hdf5pfs-retire-MiB")
			case r.Approach == "HDF5+PFS":
				b.ReportMetric(mb, "hdf5pfs-MiB")
			}
		}
	}
}

// BenchmarkAblationOwnerMapVsChain quantifies the owner-map design: read
// cost independent of lineage depth vs chain reconstruction.
func BenchmarkAblationOwnerMapVsChain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expr.RunAblationOwnerMap([]int{32}, 8<<10, 32)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(rows[0].Speedup, "speedup-at-depth-32")
	}
}

// BenchmarkAblationLeafVsCoarse quantifies leaf-layer vs cell-level dedup
// granularity (paper §4.2).
func BenchmarkAblationLeafVsCoarse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := expr.RunAblationGranularity(100, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.BytesGain, "leaf-dedup-gain")
	}
}

// BenchmarkAblationConsolidation quantifies consolidated bulk reads vs
// per-tensor requests.
func BenchmarkAblationConsolidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := expr.RunAblationConsolidation(64, 16<<10)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.Speedup, "consolidation-speedup")
	}
}

// BenchmarkAblationCollectiveQuery quantifies provider-side collective
// queries vs client-side catalog iteration.
func BenchmarkAblationCollectiveQuery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		row, err := expr.RunAblationCollective(300, 1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(row.Speedup, "collective-speedup")
	}
}

// BenchmarkExtensionZeroCostProxy measures the §6 zero-cost-proxy
// projection: I/O's share of the workflow as training effort shrinks.
func BenchmarkExtensionZeroCostProxy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := expr.RunZeroCost(benchNAS(), 64, []float64{1.0, 0.1})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.EpochFraction == 0.1 {
				switch r.Approach {
				case "EvoStore":
					b.ReportMetric(r.IOFraction*100, "evostore-proxy-io-%")
				case "HDF5+PFS":
					b.ReportMetric(r.IOFraction*100, "hdf5pfs-proxy-io-%")
				}
			}
		}
	}
}
